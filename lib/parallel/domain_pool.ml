(* A fixed set of worker domains behind one task queue, plus the
   chunked fan-out combinators built on it.  No work stealing: inputs
   are split into contiguous chunks up front (deterministic, cache
   friendly over immutable data), one task per chunk.

   The calling domain is always a worker for its own fan-out: it runs
   the first chunk itself and then helps drain the queue before
   blocking, so a fan-out makes progress even with a pool of size 1,
   from inside another task, or after [shutdown]. *)

let log_src = Logs.Src.create "datacite.parallel" ~doc:"Domain pool"

module Log = (val Logs.src_log log_src)

(* Read once at startup: the answer cannot change while we run, and a
   plain let avoids [Lazy]'s domain-unsafety. *)
let cores = max 1 (Domain.recommended_domain_count ())
let available_cores () = cores

let effective ~requested =
  if requested < 1 then invalid_arg "Domain_pool.effective: requested < 1";
  min requested cores

(* Dynamic-context propagation: [!capture_context ()] runs on the
   domain submitting a fan-out and returns a wrapper applied to every
   task, so dynamically scoped state (the {!Dc_citation.Metrics} sink
   stack) survives the hop onto a worker domain.  Identity by default;
   Dc_citation installs the metrics capture when linked. *)
let capture_context : (unit -> (unit -> unit) -> unit -> unit) ref =
  ref (fun () task -> task)

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let size t = t.size

(* Tasks are wrapped by [run_all] and never raise. *)
let worker t =
  let rec next () =
    Mutex.lock t.mu;
    while Queue.is_empty t.tasks && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    (* drain the queue before exiting on shutdown *)
    if Queue.is_empty t.tasks then Mutex.unlock t.mu
    else begin
      let task = Queue.pop t.tasks in
      Mutex.unlock t.mu;
      task ();
      next ()
    end
  in
  next ()

let create ?(clamp = true) ~domains () =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  (* On hardware with fewer cores than requested domains, extra domains
     only add minor-GC barriers: clamp to the core count so a pool
     "of 8" on a 1-core box degrades to sequential execution in the
     caller.  [clamp:false] forces the requested width (tests that
     exercise the cross-domain machinery itself). *)
  let domains = if clamp then effective ~requested:domains else domains in
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      tasks = Queue.create ();
      stopping = false;
      workers = [];
      size = domains;
    }
  in
  (* the caller's domain counts toward [domains], so spawn one fewer *)
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  if domains > 1 then
    Log.debug (fun m -> m "pool of %d domains (%d spawned)" domains (domains - 1));
  t

let shutdown t =
  Mutex.lock t.mu;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mu;
  if not already then List.iter Domain.join workers

let with_pool ?clamp ~domains f =
  let t = create ?clamp ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let chunk ?(min_chunk = 1) ~chunks xs =
  if chunks < 1 then invalid_arg "Domain_pool.chunk: chunks < 1";
  if min_chunk < 1 then invalid_arg "Domain_pool.chunk: min_chunk < 1";
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else
    (* cap the chunk count so every chunk carries at least [min_chunk]
       items — a fan-out whose per-task work does not cover the queue
       hand-off should raise [min_chunk] rather than eat the cost *)
    let k = min (min chunks n) (max 1 (n / min_chunk)) in
    (* contiguous chunks whose sizes differ by at most one *)
    List.init k (fun i ->
        let lo = i * n / k and hi = (i + 1) * n / k in
        Array.to_list (Array.sub arr lo (hi - lo)))

let run_all t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else if n = 1 then [ thunks.(0) () ]
  else begin
    let results = Array.make n None in
    let error = ref None in
    let pending = ref n in
    let mu = Mutex.create () in
    let all_done = Condition.create () in
    (* capture the caller's dynamic context once; every task (queued or
       run here) executes under it *)
    let in_context = !capture_context () in
    let task i =
      in_context (fun () ->
          let r =
            try Ok (thunks.(i) ())
            with ex -> Error (ex, Printexc.get_raw_backtrace ())
          in
          Mutex.lock mu;
          (match r with
          | Ok v -> results.(i) <- Some v
          | Error e -> if !error = None then error := Some e);
          decr pending;
          if !pending = 0 then Condition.signal all_done;
          Mutex.unlock mu)
    in
    (* offload every chunk but the first; run that one here *)
    Mutex.lock t.mu;
    for i = 1 to n - 1 do
      Queue.push (task i) t.tasks
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu;
    task 0 ();
    (* help: run queued tasks (ours or a concurrent caller's — they are
       self-contained) instead of blocking while work is pending *)
    let rec help () =
      Mutex.lock t.mu;
      let tk = Queue.take_opt t.tasks in
      Mutex.unlock t.mu;
      match tk with
      | Some tk ->
          tk ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock mu;
    while !pending > 0 do
      Condition.wait all_done mu
    done;
    Mutex.unlock mu;
    match !error with
    | Some (ex, bt) -> Printexc.raise_with_backtrace ex bt
    | None -> Array.to_list (Array.map Option.get results)
  end

let parallel_map ?min_chunk t f xs =
  match chunk ?min_chunk ~chunks:t.size xs with
  | [] -> []
  | [ only ] -> List.map f only
  | chunks -> List.concat (run_all t (List.map (fun c () -> List.map f c) chunks))

let parallel_fold ?min_chunk t ~fold ~init ~merge xs =
  match chunk ?min_chunk ~chunks:t.size xs with
  | [] -> init
  | [ only ] -> List.fold_left fold init only
  | chunks ->
      run_all t (List.map (fun c () -> List.fold_left fold init c) chunks)
      |> List.fold_left merge init
