(** A pool of OCaml 5 domains for chunked fan-out over immutable
    inputs.

    Unlike the systhread {!Dc_server.Worker_pool}, which interleaves
    jobs on one runtime, every worker here is a {!Domain} and runs in
    parallel with the others.  There is no work stealing: {!parallel_map}
    and {!parallel_fold} split their input into at most [size] contiguous
    chunks up front and hand one chunk to each domain, which keeps the
    split deterministic and the per-chunk data access sequential.

    The calling domain always participates: a pool of [domains = n]
    spawns [n - 1] workers and the caller runs the first chunk itself,
    then helps drain the queue before blocking.  Consequences worth
    knowing:

    - [domains = 1] spawns nothing and degrades to plain [List.map] /
      [List.fold_left] in the caller — a zero-overhead baseline;
    - fan-outs from inside a task (nested parallelism) and fan-outs
      after {!shutdown} still complete, executed by the caller;
    - tasks must not block on results of tasks queued behind them.

    {b Core detection.}  Domains beyond the physical core count buy no
    parallelism and still pay OCaml's stop-the-world minor-GC barrier,
    so on an [c]-core host a pool request of [n > c] domains is clamped
    to [c] by default — on a single core that means {e sequential}
    execution in the caller, the honest optimum.  {!available_cores}
    and {!effective} expose the detection so callers (benchmarks, the
    server) can report what actually ran.

    Thread safety: all operations may be called from any domain or
    thread concurrently. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count] read once at startup, floored at
    1: the number of domains this host can actually run in parallel. *)

val effective : requested:int -> int
(** [min requested (available_cores ())] — the domain count a clamped
    pool (or shard set) of width [requested] really gets.  Raises
    [Invalid_argument] when [requested < 1]. *)

type t

val create : ?clamp:bool -> domains:int -> unit -> t
(** [create ~domains ()] starts a pool of total parallelism [domains]
    ([domains - 1] spawned workers plus the caller), clamped to
    {!available_cores} unless [clamp:false] (default [true]; tests of
    the cross-domain machinery itself opt out).  Raises
    [Invalid_argument] when [domains < 1].  Each pool holds OS
    resources; call {!shutdown} when done (or use {!with_pool}). *)

val size : t -> int
(** The pool's parallelism after clamping — the width fan-outs split
    to, which may be less than the [domains] requested. *)

val shutdown : t -> unit
(** Drains queued tasks, then joins the worker domains.  Idempotent.
    Fan-outs issued after shutdown run sequentially in the caller. *)

val with_pool : ?clamp:bool -> domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val chunk : ?min_chunk:int -> chunks:int -> 'a list -> 'a list list
(** Split into at most [chunks] contiguous chunks whose sizes differ by
    at most one; [List.concat (chunk ~chunks xs) = xs].  Empty input
    gives no chunks; never produces an empty chunk.  [min_chunk]
    (default 1) additionally caps the chunk count so every chunk
    carries at least [min_chunk] items (whole input as one chunk when
    it is smaller than that): raise it when the per-item work is too
    cheap to amortize a task hand-off. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Run the thunks in parallel across the pool (the first in the
    caller), returning results in input order.  If any thunk raises,
    the first exception (by completion order) is re-raised in the
    caller after all thunks have finished.  Every thunk runs under the
    submitting domain's dynamic context (see {!capture_context}), so
    e.g. a {!Dc_citation.Metrics.with_sink} scope open at the call site
    also covers work executed on the worker domains. *)

val parallel_map : ?min_chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map t f xs = List.map f xs], computed over at most
    [size t] chunks in parallel ([min_chunk] as in {!chunk}).  [f] must
    be safe to call from another domain (pure functions and functions
    touching only domain-safe state qualify). *)

val parallel_fold :
  ?min_chunk:int ->
  t -> fold:('acc -> 'a -> 'acc) -> init:'acc -> merge:('acc -> 'acc -> 'acc) ->
  'a list -> 'acc
(** Fold each chunk with [fold] from [init], then [merge] the per-chunk
    accumulators left to right (chunk order, deterministic) onto [init].
    [init] must be neutral for [merge] for the result to be independent
    of the chunking. *)

val capture_context : (unit -> (unit -> unit) -> unit -> unit) ref
(** Propagation hook for dynamically scoped state.  [!capture_context
    ()] is evaluated on the domain submitting a fan-out; the wrapper it
    returns is applied to every task of that fan-out, typically
    installing captured domain-local state around the task on the
    worker.  Identity by default; {!Dc_citation.Metrics} installs its
    sink-stack capture when linked.  Replace by {e composing} with the
    previous value if several layers need propagation. *)
