(** A pool of OCaml 5 domains for chunked fan-out over immutable
    inputs.

    Unlike the systhread {!Dc_server.Worker_pool}, which interleaves
    jobs on one runtime, every worker here is a {!Domain} and runs in
    parallel with the others.  There is no work stealing: {!parallel_map}
    and {!parallel_fold} split their input into at most [size] contiguous
    chunks up front and hand one chunk to each domain, which keeps the
    split deterministic and the per-chunk data access sequential.

    The calling domain always participates: a pool of [domains = n]
    spawns [n - 1] workers and the caller runs the first chunk itself,
    then helps drain the queue before blocking.  Consequences worth
    knowing:

    - [domains = 1] spawns nothing and degrades to plain [List.map] /
      [List.fold_left] in the caller — a zero-overhead baseline;
    - fan-outs from inside a task (nested parallelism) and fan-outs
      after {!shutdown} still complete, executed by the caller;
    - tasks must not block on results of tasks queued behind them.

    Thread safety: all operations may be called from any domain or
    thread concurrently. *)

type t

val create : domains:int -> t
(** [create ~domains] starts a pool of total parallelism [domains]
    ([domains - 1] spawned workers plus the caller).  Raises
    [Invalid_argument] when [domains < 1].  Each pool holds OS
    resources; call {!shutdown} when done (or use {!with_pool}). *)

val size : t -> int
(** The [domains] the pool was created with. *)

val shutdown : t -> unit
(** Drains queued tasks, then joins the worker domains.  Idempotent.
    Fan-outs issued after shutdown run sequentially in the caller. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val chunk : chunks:int -> 'a list -> 'a list list
(** Split into at most [chunks] contiguous chunks whose sizes differ by
    at most one; [List.concat (chunk ~chunks xs) = xs].  Empty input
    gives no chunks; never produces an empty chunk. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Run the thunks in parallel across the pool (the first in the
    caller), returning results in input order.  If any thunk raises,
    the first exception (by completion order) is re-raised in the
    caller after all thunks have finished. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map t f xs = List.map f xs], computed over [size t]
    chunks in parallel.  [f] must be safe to call from another domain
    (pure functions and functions touching only domain-safe state
    qualify). *)

val parallel_fold :
  t -> fold:('acc -> 'a -> 'acc) -> init:'acc -> merge:('acc -> 'acc -> 'acc) ->
  'a list -> 'acc
(** Fold each chunk with [fold] from [init], then [merge] the per-chunk
    accumulators left to right (chunk order, deterministic) onto [init].
    [init] must be neutral for [merge] for the result to be independent
    of the chunking. *)
