module R = Dc_relational
module Cq = Dc_cq
module Smap = Map.Make (String)
module Sset = Set.Make (String)

type t = {
  subclass : Sset.t Smap.t;  (* class -> direct superclasses *)
  subprop : Sset.t Smap.t;
  domain : Sset.t Smap.t;  (* property -> domain classes *)
  range : Sset.t Smap.t;
}

let empty =
  {
    subclass = Smap.empty;
    subprop = Smap.empty;
    domain = Smap.empty;
    range = Smap.empty;
  }

let add_edge m a b =
  Smap.update a
    (function
      | None -> Some (Sset.singleton b) | Some s -> Some (Sset.add b s))
    m

let add_subclass o ~sub ~super = { o with subclass = add_edge o.subclass sub super }
let add_subproperty o ~sub ~super = { o with subprop = add_edge o.subprop sub super }
let add_domain o ~prop ~cls = { o with domain = add_edge o.domain prop cls }
let add_range o ~prop ~cls = { o with range = add_edge o.range prop cls }

(* ------------------------------------------------------------------ *)
(* The RDFS reasoner is a stratified Datalog program over a relational
   encoding of the axioms and the graph.  EDB relations:

   - [Rdfs_subclass]/[Rdfs_subprop]/[Rdfs_domain]/[Rdfs_range]: the
     axiom edges as (sub,super) / (prop,cls) pairs;
   - [Spo](subj,pred): every triple's subject-predicate pair;
   - [Opo](obj,pred): the pairs whose object is an IRI;
   - [TypeOf](subj,cls): asserted [rdf:type] triples with IRI object;
   - [IsTypeProp](pred): the [rdf:type] singleton, negated to keep
     domain reasoning off type assertions.

   [SubjectClass] then holds exactly the old hand-written reasoner's
   answer: asserted types, plus domains of used properties and ranges
   of membered properties (each closed under subproperty, reflexively),
   all closed reflexively-transitively under subclass. *)

let program =
  lazy
    (Cq.Program.parse_exn
       {|
  SubClassT(X,Y) :- Rdfs_subclass(X,Y);
  SubClassT(X,Z) :- Rdfs_subclass(X,Y), SubClassT(Y,Z);
  SubPropT(X,Y) :- Rdfs_subprop(X,Y);
  SubPropT(X,Z) :- Rdfs_subprop(X,Y), SubPropT(Y,Z);
  PropUsed(P) :- Spo(S,P);
  PropUsed(P) :- Opo(O,P);
  SubPropR(P,P) :- PropUsed(P);
  SubPropR(P,Q) :- PropUsed(P), SubPropT(P,Q);
  DirectClass(S,C) :- TypeOf(S,C);
  DirectClass(S,C) :- Spo(S,P), not IsTypeProp(P), SubPropR(P,Q), Rdfs_domain(Q,C);
  DirectClass(O,C) :- Opo(O,P), SubPropR(P,Q), Rdfs_range(Q,C);
  SubjectClass(S,C) :- DirectClass(S,C);
  SubjectClass(S,D) :- DirectClass(S,C), SubClassT(C,D)
|})

let pair_schema name a b =
  R.Schema.make name
    [ R.Schema.attr ~ty:R.Value.TStr a; R.Schema.attr ~ty:R.Value.TStr b ]

let pair_relation name a b pairs =
  List.fold_left
    (fun rel (x, y) ->
      R.Relation.insert rel (R.Tuple.make [ R.Value.Str x; R.Value.Str y ]))
    (R.Relation.empty (pair_schema name a b))
    pairs

let map_pairs m = Smap.fold (fun a s acc -> Sset.fold (fun b acc -> (a, b) :: acc) s acc) m []

let encode_edb o g =
  let spo, opo, types =
    Graph.fold
      (fun (tr : Triple.t) (spo, opo, types) ->
        let spo = (tr.subj, tr.pred) :: spo in
        match tr.obj with
        | Triple.Iri obj ->
            let types =
              if String.equal tr.pred Triple.rdf_type then
                (tr.subj, obj) :: types
              else types
            in
            (spo, (obj, tr.pred) :: opo, types)
        | _ -> (spo, opo, types))
      g ([], [], [])
  in
  List.fold_left
    (fun db rel -> R.Database.add_relation db rel)
    R.Database.empty
    [
      pair_relation "Rdfs_subclass" "Sub" "Super" (map_pairs o.subclass);
      pair_relation "Rdfs_subprop" "Sub" "Super" (map_pairs o.subprop);
      pair_relation "Rdfs_domain" "Prop" "Cls" (map_pairs o.domain);
      pair_relation "Rdfs_range" "Prop" "Cls" (map_pairs o.range);
      pair_relation "Spo" "S" "P" spo;
      pair_relation "Opo" "O" "P" opo;
      pair_relation "TypeOf" "S" "C" types;
      R.Relation.insert
        (R.Relation.empty
           (R.Schema.make "IsTypeProp" [ R.Schema.attr ~ty:R.Value.TStr "P" ]))
        (R.Tuple.make [ R.Value.Str Triple.rdf_type ]);
    ]

let derive o g =
  Cq.Seminaive.run (encode_edb o g) (Lazy.force program).Cq.Program.strat

let pairs db name =
  match R.Database.relation db name with
  | None -> []
  | Some rel ->
      List.filter_map
        (fun t ->
          match R.Tuple.to_list t with
          | [ R.Value.Str a; R.Value.Str b ] -> Some (a, b)
          | _ -> None)
        (R.Relation.tuples rel)

(* Reflexive-transitive closure of [start] in the derived strict
   closure [rel_name]. *)
let reflexive_closure db rel_name start =
  start
  :: List.filter_map
       (fun (a, b) -> if String.equal a start then Some b else None)
       (pairs db rel_name)
  |> List.sort_uniq String.compare

let superclasses o c = reflexive_closure (derive o Graph.empty) "SubClassT" c
let superproperties o p = reflexive_closure (derive o Graph.empty) "SubPropT" p

let classes o =
  let acc =
    Smap.fold
      (fun c supers acc -> Sset.union (Sset.add c supers) acc)
      o.subclass Sset.empty
  in
  let acc = Smap.fold (fun _ cs acc -> Sset.union cs acc) o.domain acc in
  let acc = Smap.fold (fun _ cs acc -> Sset.union cs acc) o.range acc in
  Sset.elements acc

(* Longest subclass chain — an aggregate over the hierarchy, not a
   fixpoint, so it stays a small recursion over the edge map. *)
let depth o =
  let rec chain c =
    match Smap.find_opt c o.subclass with
    | None -> 1
    | Some supers ->
        1 + Sset.fold (fun s acc -> max acc (chain s)) supers 0
  in
  List.fold_left (fun acc c -> max acc (chain c)) 0 (classes o)

let subject_classes_db db subj =
  List.filter_map
    (fun (s, c) -> if String.equal s subj then Some c else None)
    (pairs db "SubjectClass")
  |> List.sort_uniq String.compare

let subject_classes o g subj = subject_classes_db (derive o g) subj

let infer_types o g =
  let db = derive o g in
  let subjects =
    Graph.fold
      (fun (t : Triple.t) acc -> Sset.add t.subj acc)
      g Sset.empty
  in
  List.map (fun s -> (s, subject_classes_db db s)) (Sset.elements subjects)
