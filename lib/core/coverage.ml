module Cq = Dc_cq
module Rw = Dc_rewriting

type query_report = {
  query : Cq.Query.t;
  rewriting_count : int;
  covered : bool;
  ambiguous : bool;
  min_citation_size : int option;
}

type report = {
  total : int;
  covered : int;
  ambiguous : int;
  per_query : query_report list;
}

let analyze ?db views workload =
  let per_query =
    List.map
      (fun q ->
        let rewritings = (Rw.Rewrite.search views q).Rw.Rewrite.queries in
        let n = List.length rewritings in
        let min_size =
          match (db, rewritings) with
          | Some db, _ :: _ ->
              Some
                (List.fold_left
                   (fun acc r -> min acc (Rw.Cost.citation_size db views r))
                   max_int rewritings)
          | _ -> None
        in
        {
          query = q;
          rewriting_count = n;
          covered = n > 0;
          ambiguous = n > 1;
          min_citation_size = min_size;
        })
      workload
  in
  {
    total = List.length per_query;
    covered =
      List.length (List.filter (fun (r : query_report) -> r.covered) per_query);
    ambiguous =
      List.length
        (List.filter (fun (r : query_report) -> r.ambiguous) per_query);
    per_query;
  }

let coverage_ratio r =
  if r.total = 0 then 1.0 else float_of_int r.covered /. float_of_int r.total

let covered_count views workload =
  List.length
    (List.filter
       (fun q -> (Rw.Rewrite.search views q).Rw.Rewrite.queries <> [])
       workload)

let greedy_minimal_views views workload =
  let target = covered_count views workload in
  let rec shrink kept =
    let try_drop v =
      let remaining = List.filter (fun v' -> not (v' == v)) kept in
      if covered_count (Rw.View.Set.of_list remaining) workload = target then
        Some remaining
      else None
    in
    match List.find_map try_drop kept with
    | Some remaining -> shrink remaining
    | None -> kept
  in
  shrink (Rw.View.Set.to_list views)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>workload: %d queries, %d covered (%.0f%%), %d ambiguous@ %a@]"
    r.total r.covered
    (100. *. coverage_ratio r)
    r.ambiguous
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf qr ->
         Format.fprintf ppf "%s: %d rewriting(s)%a"
           (Cq.Query.name qr.query) qr.rewriting_count
           (fun ppf -> function
             | None -> ()
             | Some s -> Format.fprintf ppf ", min citation size %d" s)
           qr.min_citation_size))
    r.per_query

let suggest_views ?(prefix = "Suggested") views workload =
  let covered vset q = (Rw.Rewrite.search vset q).Rw.Rewrite.queries <> [] in
  let uncovered = List.filter (fun q -> not (covered views q)) workload in
  (* each uncovered query, as a view over the base schema; adding a
     suggestion may cover later uncovered queries, so re-check against
     the grown view set *)
  let _, suggestions =
    List.fold_left
      (fun (vset, acc) q ->
        if covered vset q then (vset, acc)
        else
          let name = Printf.sprintf "%s%d" prefix (List.length acc) in
          let view = Cq.Query.with_name name (Cq.Query.strip_params q) in
          match Rw.View.Set.add vset (Rw.View.of_query view) with
          | Ok vset -> (vset, acc @ [ view ])
          | Error _ -> (vset, acc))
      (views, []) uncovered
  in
  suggestions
