(** CITER — the one signature every citation backend answers to.

    {!Engine} (single), {!Sharded_engine} (round-robin replicas) and
    {!Versioned_engine} (head of a version store) all implement
    {!module-type-S}; the packed {!type-t} lets the server, the REPL and
    the benches dispatch through one value regardless of which backend
    a deployment picked.

    Backend-specific capabilities (versioned [cite_at], pool-parallel
    batch citing) stay on the backend modules — CITER is the common
    core, not the union.  {!describe} reports {e which} backend and
    what it can do, so the REPL's [:stats], the server's v2 [HEALTH]
    and the bench banners stop probing engines ad hoc. *)

type capabilities = {
  backend : string;  (** ["engine"], ["sharded"] or ["versioned"] *)
  supports_versions : bool;  (** [cite_at]/[commit_delta] available *)
  supports_recursion : bool;
      (** the underlying engine carries a Datalog program with at least
          one recursive predicate *)
  shards : int;  (** replica count; [1] for unsharded backends *)
}

val pp_capabilities : Format.formatter -> capabilities -> unit
val capabilities_to_string : capabilities -> string
val capabilities_to_json : capabilities -> string
(** One-line JSON object over the four labeled fields. *)

module type S = sig
  type t

  val cite : t -> Dc_cq.Query.t -> Engine.result

  val cite_string : t -> string -> (Engine.result, string) Stdlib.result
  (** Parses with {!Dc_cq.Parser.parse_query} first. *)

  val cite_batch : t -> Dc_cq.Query.t list -> Engine.result list
  (** Results in input order.  Sequential unless the backend documents
      otherwise; {!Sharded_engine.cite_batch} remains the
      pool-parallel entry point. *)

  val metrics : t -> Metrics.t
  val describe : t -> capabilities
end

type t = Citer : (module S with type t = 'a) * 'a -> t
(** A backend packed with its implementation — first-class CITER. *)

val of_engine : Engine.t -> t
val of_sharded : Sharded_engine.t -> t

val of_versioned : Versioned_engine.t -> t
(** Cites at head; the stamp is dropped.  Raises [Invalid_argument]
    only if the head version vanished from the store (impossible
    through the public API). *)

val cite : t -> Dc_cq.Query.t -> Engine.result
val cite_string : t -> string -> (Engine.result, string) Stdlib.result
val cite_batch : t -> Dc_cq.Query.t list -> Engine.result list
val metrics : t -> Metrics.t
val describe : t -> capabilities
