module Cq = Dc_cq

module type S = sig
  type t

  val cite : t -> Cq.Query.t -> Engine.result
  val cite_string : t -> string -> (Engine.result, string) Stdlib.result
  val cite_batch : t -> Cq.Query.t list -> Engine.result list
  val metrics : t -> Metrics.t
end

type t = Citer : (module S with type t = 'a) * 'a -> t

module Engine_citer = struct
  type t = Engine.t

  let cite = Engine.cite
  let cite_string = Engine.cite_string
  let cite_batch e qs = List.map (Engine.cite e) qs
  let metrics = Engine.metrics
end

module Sharded_citer = struct
  type t = Sharded_engine.t

  let cite = Sharded_engine.cite
  let cite_string = Sharded_engine.cite_string

  (* Round-robin, sequential: the pool-parallel path stays on
     [Sharded_engine.cite_batch], which needs the pool argument the
     CITER signature deliberately leaves out. *)
  let cite_batch s qs = List.map (Sharded_engine.cite s) qs
  let metrics = Sharded_engine.metrics
end

module Versioned_citer = struct
  type t = Versioned_engine.t

  (* Head citations; [cite_at] keeps its own stamped signature outside
     the CITER shape. *)
  let cite v q =
    match Versioned_engine.cite v q with
    | Ok c -> c.Versioned_engine.result
    | Error e ->
        (* Head always exists; an error here means the store was
           corrupted out from under us. *)
        invalid_arg (Printf.sprintf "Versioned_engine.cite: %s" e)

  let cite_string = Versioned_engine.cite_string
  let cite_batch v qs = List.map (cite v) qs
  let metrics = Versioned_engine.metrics
end

let of_engine e = Citer ((module Engine_citer), e)
let of_sharded s = Citer ((module Sharded_citer), s)
let of_versioned v = Citer ((module Versioned_citer), v)

let cite (Citer ((module M), x)) q = M.cite x q
let cite_string (Citer ((module M), x)) src = M.cite_string x src
let cite_batch (Citer ((module M), x)) qs = M.cite_batch x qs
let metrics (Citer ((module M), x)) = M.metrics x
