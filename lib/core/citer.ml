module Cq = Dc_cq

type capabilities = {
  backend : string;
  supports_versions : bool;
  supports_recursion : bool;
  shards : int;
}

let pp_capabilities ppf c =
  Format.fprintf ppf "%s (shards=%d, versions=%b, recursion=%b)" c.backend
    c.shards c.supports_versions c.supports_recursion

let capabilities_to_string c = Format.asprintf "%a" pp_capabilities c

let capabilities_to_json c =
  Printf.sprintf
    "{\"backend\":\"%s\",\"shards\":%d,\"supports_versions\":%b,\"supports_recursion\":%b}"
    c.backend c.shards c.supports_versions c.supports_recursion

module type S = sig
  type t

  val cite : t -> Cq.Query.t -> Engine.result
  val cite_string : t -> string -> (Engine.result, string) Stdlib.result
  val cite_batch : t -> Cq.Query.t list -> Engine.result list
  val metrics : t -> Metrics.t
  val describe : t -> capabilities
end

type t = Citer : (module S with type t = 'a) * 'a -> t

let engine_recursion eng = Engine.recursive_predicates eng <> []

module Engine_citer = struct
  type t = Engine.t

  let cite = Engine.cite
  let cite_string = Engine.cite_string
  let cite_batch e qs = List.map (Engine.cite e) qs
  let metrics = Engine.metrics

  let describe e =
    {
      backend = "engine";
      supports_versions = false;
      supports_recursion = engine_recursion e;
      shards = 1;
    }
end

module Sharded_citer = struct
  type t = Sharded_engine.t

  let cite = Sharded_engine.cite
  let cite_string = Sharded_engine.cite_string

  (* Round-robin, sequential: the pool-parallel path stays on
     [Sharded_engine.cite_batch], which needs the pool argument the
     CITER signature deliberately leaves out. *)
  let cite_batch s qs = List.map (Sharded_engine.cite s) qs
  let metrics = Sharded_engine.metrics

  let describe s =
    {
      backend = "sharded";
      supports_versions = false;
      supports_recursion = engine_recursion (Sharded_engine.primary s);
      shards = Sharded_engine.shard_count s;
    }
end

module Versioned_citer = struct
  type t = Versioned_engine.t

  (* Head citations; [cite_at] keeps its own stamped signature outside
     the CITER shape. *)
  let cite v q =
    match Versioned_engine.cite v q with
    | Ok c -> c.Versioned_engine.result
    | Error e ->
        (* Head always exists; an error here means the store was
           corrupted out from under us. *)
        invalid_arg (Printf.sprintf "Versioned_engine.cite: %s" e)

  let cite_string = Versioned_engine.cite_string
  let cite_batch v qs = List.map (cite v) qs
  let metrics = Versioned_engine.metrics

  let describe v =
    {
      backend = "versioned";
      supports_versions = true;
      supports_recursion = engine_recursion (Versioned_engine.template v);
      shards = 1;
    }
end

let of_engine e = Citer ((module Engine_citer), e)
let of_sharded s = Citer ((module Sharded_citer), s)
let of_versioned v = Citer ((module Versioned_citer), v)

let cite (Citer ((module M), x)) q = M.cite x q
let cite_string (Citer ((module M), x)) src = M.cite_string x src
let cite_batch (Citer ((module M), x)) qs = M.cite_batch x qs
let metrics (Citer ((module M), x)) = M.metrics x
let describe (Citer ((module M), x)) = M.describe x
