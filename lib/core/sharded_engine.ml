(* N engine replicas over one immutable database/view set: shard 0 is
   the engine passed in (or freshly created), the rest are
   [Engine.replicate]s with private caches and locks, so domains
   working different shards never contend.  Dispatch is round-robin
   over an atomic counter. *)

type t = {
  shards : Engine.t array;
  next : int Atomic.t;
}

let of_engine ?(clamp = true) ~shards engine =
  if shards < 1 then invalid_arg "Sharded_engine.of_engine: shards < 1";
  (* Shards exist to give each core a contention-free replica; replicas
     beyond the core count only multiply cold caches, so clamp by
     default (a 1-core box gets exactly one shard — sequential, no
     replica cost).  [clamp:false] keeps the requested width for tests
     of the dispatch machinery itself. *)
  let shards =
    if clamp then Dc_parallel.Domain_pool.effective ~requested:shards
    else shards
  in
  {
    shards =
      Array.init shards (fun i ->
          if i = 0 then engine else Engine.replicate engine);
    next = Atomic.make 0;
  }

let create ?clamp ?policy ?selection ?partial ?fallback_contained ?pool ~shards
    base cviews =
  of_engine ?clamp ~shards
    (Engine.create ?policy ?selection ?partial ?fallback_contained ?pool base
       cviews)

let shard_count t = Array.length t.shards
let primary t = t.shards.(0)

let shard t i =
  let n = Array.length t.shards in
  t.shards.(((i mod n) + n) mod n)

let seed_round_robin t i = Atomic.set t.next i

let pick t =
  let n = Array.length t.shards in
  if n = 1 then t.shards.(0)
  else
    (* OCaml's [mod] keeps the dividend's sign, so once the counter
       wraps past [max_int] a plain [i mod n] would index negatively;
       normalize to the canonical non-negative residue instead of
       trusting the counter to stay positive. *)
    let i = Atomic.fetch_and_add t.next 1 in
    t.shards.(((i mod n) + n) mod n)

let cite t q = Engine.cite (pick t) q
let cite_string t src = Engine.cite_string (pick t) src
let metrics t = Engine.metrics (primary t)

let cite_batch t pool queries =
  let chunks =
    Dc_parallel.Domain_pool.chunk
      ~chunks:(Dc_parallel.Domain_pool.size pool)
      queries
  in
  Dc_parallel.Domain_pool.run_all pool
    (List.mapi
       (fun i qs () -> List.map (Engine.cite (shard t i)) qs)
       chunks)
  |> List.concat
