(** Engine observability: monotonic counters and timers.

    A registry ({!t}) holds named counters and timers.  The process-wide
    {!default} registry aggregates everything; each {!Engine.t} also
    carries its own handle so cache behaviour can be inspected per
    engine.  Counter increments fired from the lower layers
    ({!Dc_cq.Eval} index-cache events, {!Dc_cq.Containment} checks,
    {!Dc_rewriting.Rewrite} enumeration events) are routed here through
    observer hooks installed when this module is linked, and reach
    [default] plus every registry pushed with {!with_sink}.

    Counters are monotonic: nothing but {!reset} ever decreases one.
    Timers use the monotonic clock ({!Dc_clock.Monotonic}), so recorded
    durations are immune to wall-clock steps.

    {b Concurrency: per-domain sinks, no shared lock on the record
    path.}  Internally a registry is a set of {e sinks}, one per domain
    that has recorded into it.  {!record}, {!incr}, {!add_time},
    {!record_max} and {!record_time} mutate plain unsynchronized fields
    of the calling domain's own sink: domains hammering the same
    registry never serialize and never share a cache line.  The only
    lock is taken at registration — the first time a given domain
    touches a given registry or dynamic name — and by the read side.
    Read-side aggregation ({!count}, {!counters}, {!timer}, {!timers},
    {!pp}, {!to_json}) sums the sinks at call time; concurrent with
    writers it may observe slightly stale per-domain values (never torn,
    never decreasing), and is exact once the writing domains have been
    joined.  {!reset} zeroes every sink and assumes quiescence.

    {b [with_sink] is domain-local.}  The dynamically scoped sink stack
    is per domain: a scope opened on one domain is invisible to events
    recorded by another, so worker domains never touch a shared scope
    list.  The one {e deliberate} crossing is pool fan-out:
    {!Dc_parallel.Domain_pool.run_all} (hence [parallel_map] and the
    engine's parallel rewriting) re-installs the submitting domain's
    scopes around every task, so work farmed out under [with_sink m]
    still lands in [m] — each worker through its own per-domain sink of
    [m].  Raw [Domain.spawn] does not propagate scopes. *)

type t

val create : unit -> t
(** A fresh registry.  Every well-known counter reads 0 until first
    recorded. *)

val default : t
(** The process-wide registry.  Every recorded event lands here. *)

(** The well-known counter names. *)
module Key : sig
  val eval_index_builds : string
  val eval_cache_hits : string
  val eval_cache_misses : string

  val plan_compiles : string
  (** Query compilations by {!Dc_cq.Eval}'s plan cache (a miss, or a
      cached plan invalidated by database evolution).  Compilation time
      accumulates under the [plan_compile] timer. *)

  val eval_plan_hits : string
  (** Evaluations served by an already-compiled, still-valid plan — the
      warm citation hot path.  Distinct from {!plan_cache_hits}, which
      counts the rewriting-policy plan cache in {!Engine}. *)

  val leaf_cache_hits : string
  val leaf_cache_misses : string
  val plan_cache_hits : string
  val plan_cache_misses : string
  val rewriting_candidates : string
  val rewriting_verified : string
  val rewriting_kept : string
  val containment_checks : string

  val engine_lock_waits : string
  (** Times an engine's cache lock was found already held and had to be
      waited for — the direct measure of hot-path contention.  Stays 0
      when each domain works its own shard. *)

  val server_requests : string
  (** Request lines received by the citation server (all commands,
      well-formed or not). *)

  val server_errors : string
  (** Requests answered with an [ERR] line (parse failures, engine
      errors, overload rejections, timeouts). *)

  val server_queue_depth : string
  (** High-water mark of the server's worker-pool queue (maintained
      with {!record_max}, so still monotonic between resets). *)

  val server_busy_sheds : string
  (** Requests shed with the [BUSY] line instead of queueing — the
      pending-request queue or a connection's pipeline bound was full.
      A subset of {!server_errors}. *)

  val server_batches : string
  (** [CITE_BATCH] requests executed (each answering many queries
      against one shard/version pick). *)

  val version_commits : string
  (** Deltas committed through a {!Versioned_engine}. *)

  val version_cache_hits : string
  (** [cite_at] requests served by an already-materialized per-version
      engine. *)

  val version_cache_misses : string
  (** [cite_at] requests that had to check out and materialize a
      version. *)

  val version_cache_evictions : string
  (** Per-version engines dropped by the versioned engine's LRU bound. *)

  val registrations_maintained : string
  (** Incremental registrations updated across [commit_delta] calls
      (one count per registration per commit). *)

  val wal_appends : string
  (** Records appended to the durable store's write-ahead log (commits
      and registrations). *)

  val wal_fsyncs : string
  (** fsync(2) calls issued by the WAL writer — [Always] makes this
      track {!wal_appends} under serial load, while group commit keeps
      it below {!wal_appends} under concurrent load; [Interval]/[Never]
      keep it far below.  The time spent is under the [wal_fsync]
      timer. *)

  val wal_group_commits : string
  (** fsyncs that covered more than one [Always] append — concurrent
      committers coalesced into a single barrier by the WAL's group
      commit. *)

  val snapshots_written : string
  (** Binary snapshots written (background cadence, graceful drain, or
      data-dir initialization). *)

  val recovery_replayed_deltas : string
  (** Committed deltas replayed from the WAL during crash recovery
      (time under the [recovery_replay] timer). *)

  val datalog_fixpoints : string
  (** Recursive-stratum fixpoints run to completion by
      {!Dc_cq.Seminaive} (time under the [datalog_fixpoint] timer;
      the engine's full derivations also time under [derive]). *)

  val datalog_iterations : string
  (** Delta-iteration rounds across all recursive-stratum fixpoints —
      [datalog_iterations / datalog_fixpoints] is the mean rounds to
      converge. *)

  val all : string list
  (** Every key above, in canonical display order. *)
end

val incr : ?by:int -> t -> string -> unit
(** Bump a counter in the calling domain's sink — no lock, no shared
    write. *)

val record_max : t -> string -> int -> unit
(** Raise a counter to [v] if it is currently below it, a monotonic
    high-water mark.  Per-domain marks aggregate by [max] (while
    {!incr} contributions aggregate by sum); do not mix both on one
    key. *)

val count : t -> string -> int
(** Aggregate over all sinks; [0] for a counter never incremented. *)

val counters : t -> (string * int) list
(** All counters in display order: the well-known keys first (always
    present), then dynamic names in first-use order. *)

val add_time : t -> string -> float -> unit
(** Accumulate [seconds] under a timer name and bump its call count. *)

val timer : t -> string -> float * int
(** [(total_seconds, calls)] aggregated over all sinks; [(0., 0)] for
    an unknown timer. *)

val timers : t -> (string * (float * int)) list

val sink_count : t -> int
(** How many per-domain sinks the registry has accumulated — the number
    of distinct domains that ever recorded into it. *)

val per_sink : t -> string -> int list
(** The counter's per-domain values (unordered, one per sink): the
    breakdown behind {!count}.  Benchmarks use it to attribute
    contention (e.g. {!Key.engine_lock_waits}) to domains. *)

val reset : t -> unit
(** Zero every counter and timer in every sink (the only non-monotonic
    operation).  Call at quiescence: concurrent writers may race
    individual zeroes. *)

val with_sink : t -> (unit -> 'a) -> 'a
(** Route events recorded during the callback {e on this domain} into
    [t] as well as {!default}.  Nests; re-pushing a registry already in
    scope does not double-count.  Pool fan-outs inside the callback
    carry the scope to their worker domains (see the module note); raw
    [Domain.spawn] does not. *)

val record : ?by:int -> string -> unit
(** Increment a counter on {!default} and every sink in scope on this
    domain. *)

val record_time : string -> (unit -> 'a) -> 'a
(** Time the callback (monotonic clock) and charge it to {!default} and
    every sink in scope on this domain, even when it raises. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump: one [name = value] line per counter, then one
    [name: total ms / calls] line per timer. *)

val to_json : t -> string
(** [{"counters":{...},"timers":{"name":{"ms":…,"calls":…},…}}] — a
    single line, stable key order, suitable for BENCH logs. *)
