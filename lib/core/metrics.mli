(** Engine observability: monotonic counters and wall-clock timers.

    A registry ({!t}) holds named counters and timers.  The process-wide
    {!default} registry aggregates everything; each {!Engine.t} also
    carries its own handle so cache behaviour can be inspected per
    engine.  Counter increments fired from the lower layers
    ({!Dc_cq.Eval} index-cache events, {!Dc_cq.Containment} checks,
    {!Dc_rewriting.Rewrite} enumeration events) are routed here through
    observer hooks installed when this module is linked, and reach
    [default] plus every registry pushed with {!with_sink}.

    Counters are monotonic: nothing but {!reset} ever decreases one.

    {b Thread safety.}  Every operation in this module is safe to call
    from any thread: registry mutation and the (process-global) sink
    stack are serialized by one internal mutex.  {!with_sink} scopes
    opened by different threads overlap on the shared stack — while a
    scope is open, events recorded by {e any} thread reach its registry.
    The server routes all requests through one engine (one registry), so
    this sharing is exactly the aggregation it wants; processes juggling
    several engines concurrently should read per-engine counters as
    upper bounds. *)

type t

val create : unit -> t
(** A fresh registry with every well-known counter present at 0. *)

val default : t
(** The process-wide registry.  Every recorded event lands here. *)

(** The well-known counter names. *)
module Key : sig
  val eval_index_builds : string
  val eval_cache_hits : string
  val eval_cache_misses : string
  val leaf_cache_hits : string
  val leaf_cache_misses : string
  val plan_cache_hits : string
  val plan_cache_misses : string
  val rewriting_candidates : string
  val rewriting_verified : string
  val rewriting_kept : string
  val containment_checks : string

  val server_requests : string
  (** Request lines received by the citation server (all commands,
      well-formed or not). *)

  val server_errors : string
  (** Requests answered with an [ERR] line (parse failures, engine
      errors, overload rejections, timeouts). *)

  val server_queue_depth : string
  (** High-water mark of the server's worker-pool queue (maintained
      with {!record_max}, so still monotonic between resets). *)

  val version_commits : string
  (** Deltas committed through a {!Versioned_engine}. *)

  val version_cache_hits : string
  (** [cite_at] requests served by an already-materialized per-version
      engine. *)

  val version_cache_misses : string
  (** [cite_at] requests that had to check out and materialize a
      version. *)

  val version_cache_evictions : string
  (** Per-version engines dropped by the versioned engine's LRU bound. *)

  val registrations_maintained : string
  (** Incremental registrations updated across [commit_delta] calls
      (one count per registration per commit). *)

  val all : string list
  (** Every key above, in canonical display order. *)
end

val incr : ?by:int -> t -> string -> unit

val record_max : t -> string -> int -> unit
(** Raise a counter to [v] if it is currently below it (atomically), a
    monotonic high-water mark.  Used for gauge-like observations such as
    queue depth. *)

val count : t -> string -> int
(** [0] for a counter never incremented. *)

val counters : t -> (string * int) list
(** All counters in display order (well-known first). *)

val add_time : t -> string -> float -> unit
(** Accumulate [seconds] under a timer name and bump its call count. *)

val timer : t -> string -> float * int
(** [(total_seconds, calls)]; [(0., 0)] for an unknown timer. *)

val timers : t -> (string * (float * int)) list

val reset : t -> unit
(** Zero every counter and timer (the only non-monotonic operation). *)

val with_sink : t -> (unit -> 'a) -> 'a
(** Route events recorded during the callback into [t] as well as
    {!default}.  Nests; re-pushing a registry already in scope does not
    double-count. *)

val record : ?by:int -> string -> unit
(** Increment a counter on {!default} and every active sink. *)

val record_time : string -> (unit -> 'a) -> 'a
(** Time the callback (wall clock) and charge it to {!default} and
    every active sink, even when it raises. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump: one [name = value] line per counter, then one
    [name: total ms / calls] line per timer. *)

val to_json : t -> string
(** [{"counters":{...},"timers":{"name":{"ms":…,"calls":…},…}}] — a
    single line, stable key order, suitable for BENCH logs. *)
