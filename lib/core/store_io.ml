module R = Dc_relational

let base_dir dir = Filename.concat dir "base"
let deltas_dir dir = Filename.concat dir "deltas"
let delta_path ~dir v = Filename.concat (deltas_dir dir) (Printf.sprintf "%06d.delta" v)

let init ~dir db =
  if Sys.file_exists (base_dir dir) then
    Error (Printf.sprintf "%s already contains a store" dir)
  else
    try
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Spec.save_database db ~dir:(base_dir dir);
      Sys.mkdir (deltas_dir dir) 0o755;
      Ok ()
    with Sys_error e ->
      Error (Printf.sprintf "cannot initialize store %s: %s" dir e)

let delta_files dir =
  if not (Sys.file_exists (deltas_dir dir)) then []
  else
    Sys.readdir (deltas_dir dir)
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".delta")
    |> List.sort String.compare
    |> List.map (Filename.concat (deltas_dir dir))

let load ~dir =
  match Spec.load_database ~dir:(base_dir dir) with
  | Error e -> Error (Printf.sprintf "loading base: %s" e)
  | Ok base ->
      let schemas = List.map R.Relation.schema (R.Database.relations base) in
      let rec replay store = function
        | [] -> Ok store
        | path :: rest -> (
            (* [Delta_io.load] errors already carry the file path *)
            match R.Delta_io.load ~schemas path with
            | Error e -> Error e
            | Ok delta -> (
                match R.Version_store.commit_delta store delta with
                | store, _ -> replay store rest
                | exception (Not_found | Invalid_argument _) ->
                    Error (Printf.sprintf "%s: delta does not apply" path)))
      in
      replay (R.Version_store.create base) (delta_files dir)

let commit ~dir delta =
  match load ~dir with
  | Error e -> Error e
  | Ok store -> (
      match R.Version_store.commit_delta store delta with
      | exception (Not_found | Invalid_argument _) ->
          Error "delta does not apply to the current head"
      | _, v -> (
          match R.Delta_io.save delta (delta_path ~dir v) with
          | () -> Ok v
          | exception Sys_error e ->
              Error
                (Printf.sprintf "cannot write %s: %s" (delta_path ~dir v) e)))
