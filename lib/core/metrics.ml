module Cq = Dc_cq
module Rw = Dc_rewriting

module Key = struct
  let eval_index_builds = "eval_index_builds"
  let eval_cache_hits = "eval_cache_hits"
  let eval_cache_misses = "eval_cache_misses"
  let leaf_cache_hits = "leaf_cache_hits"
  let leaf_cache_misses = "leaf_cache_misses"
  let plan_cache_hits = "plan_cache_hits"
  let plan_cache_misses = "plan_cache_misses"
  let rewriting_candidates = "rewriting_candidates"
  let rewriting_verified = "rewriting_verified"
  let rewriting_kept = "rewriting_kept"
  let containment_checks = "containment_checks"
  let server_requests = "server_requests"
  let server_errors = "server_errors"
  let server_queue_depth = "server_queue_depth"
  let version_commits = "version_commits"
  let version_cache_hits = "version_cache_hits"
  let version_cache_misses = "version_cache_misses"
  let version_cache_evictions = "version_cache_evictions"
  let registrations_maintained = "registrations_maintained"

  let all =
    [
      plan_cache_hits;
      plan_cache_misses;
      leaf_cache_hits;
      leaf_cache_misses;
      eval_cache_hits;
      eval_cache_misses;
      eval_index_builds;
      rewriting_candidates;
      rewriting_verified;
      rewriting_kept;
      containment_checks;
      server_requests;
      server_errors;
      server_queue_depth;
      version_commits;
      version_cache_hits;
      version_cache_misses;
      version_cache_evictions;
      registrations_maintained;
    ]
end

type timer = { mutable total_s : float; mutable calls : int }

(* Ordered assoc lists: the registry is tiny and iterated for display
   far more often than extended with unknown names. *)
type t = {
  mutable cs : (string * int ref) list;
  mutable ts : (string * timer) list;
}

(* One process-wide lock serializes registry mutation and the sink
   stack: the server records from its worker threads, and [with_sink]
   scopes opened by different threads interleave on the shared [sinks]
   list.  Everything under the lock is tiny (assoc-list walks, integer
   bumps), so one coarse mutex is cheaper than it looks. *)
let mu = Mutex.create ()

let locked f = Mutex.protect mu f

let create () = { cs = List.map (fun k -> (k, ref 0)) Key.all; ts = [] }
let default = create ()

let counter_ref t name =
  match List.assoc_opt name t.cs with
  | Some r -> r
  | None ->
      let r = ref 0 in
      t.cs <- t.cs @ [ (name, r) ];
      r

let incr_unlocked ?(by = 1) t name =
  let r = counter_ref t name in
  r := !r + by

let incr ?by t name = locked (fun () -> incr_unlocked ?by t name)

let record_max t name v =
  locked (fun () ->
      let r = counter_ref t name in
      if v > !r then r := v)

let count t name =
  locked (fun () ->
      match List.assoc_opt name t.cs with Some r -> !r | None -> 0)

let counters t = locked (fun () -> List.map (fun (k, r) -> (k, !r)) t.cs)

let timer_ref t name =
  match List.assoc_opt name t.ts with
  | Some tm -> tm
  | None ->
      let tm = { total_s = 0.; calls = 0 } in
      t.ts <- t.ts @ [ (name, tm) ];
      tm

let add_time_unlocked t name s =
  let tm = timer_ref t name in
  tm.total_s <- tm.total_s +. s;
  tm.calls <- tm.calls + 1

let add_time t name s = locked (fun () -> add_time_unlocked t name s)

let timer t name =
  locked (fun () ->
      match List.assoc_opt name t.ts with
      | Some tm -> (tm.total_s, tm.calls)
      | None -> (0., 0))

let timers t =
  locked (fun () -> List.map (fun (k, tm) -> (k, (tm.total_s, tm.calls))) t.ts)

let reset t =
  locked (fun () ->
      List.iter (fun (_, r) -> r := 0) t.cs;
      List.iter
        (fun (_, tm) ->
          tm.total_s <- 0.;
          tm.calls <- 0)
        t.ts)

(* Dynamically scoped extra sinks; [targets] dedups by physical
   equality so nested [with_sink] on the same registry (engine calls
   re-entering engine calls) never double-counts.  The stack is shared
   by every thread, so a scope exits by removing {e its own} frame (the
   first physically-equal one), not the head — concurrent scopes pop in
   any order. *)
let sinks : t list ref = ref []

let targets_unlocked () =
  List.fold_left
    (fun acc m -> if List.memq m acc then acc else m :: acc)
    [ default ] !sinks

let with_sink m f =
  locked (fun () -> sinks := m :: !sinks);
  Fun.protect
    ~finally:(fun () ->
      locked (fun () ->
          let rec drop = function
            | [] -> []
            | x :: rest -> if x == m then rest else x :: drop rest
          in
          sinks := drop !sinks))
    f

let record ?by name =
  locked (fun () ->
      List.iter (fun m -> incr_unlocked ?by m name) (targets_unlocked ()))

let record_time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      locked (fun () ->
          List.iter (fun m -> add_time_unlocked m name dt) (targets_unlocked ())))
    f

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-22s = %d@." k v) (counters t);
  List.iter
    (fun (k, (total, calls)) ->
      Format.fprintf ppf "%-22s : %.3f ms / %d call%s@." k (total *. 1000.)
        calls
        (if calls = 1 then "" else "s"))
    (timers t)

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:%d" k v))
    (counters t);
  Buffer.add_string buf "},\"timers\":{";
  List.iteri
    (fun i (k, (total, calls)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%S:{\"ms\":%.3f,\"calls\":%d}" k (total *. 1000.)
           calls))
    (timers t);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Route the lower layers' instrumentation hooks into the registries.
   Runs once when dc_citation is linked. *)
let () =
  Cq.Eval.on_event :=
    (function
     | Cq.Eval.Index_build -> record Key.eval_index_builds
     | Cq.Eval.Cache_hit -> record Key.eval_cache_hits
     | Cq.Eval.Cache_miss -> record Key.eval_cache_misses);
  Cq.Containment.on_check := (fun () -> record Key.containment_checks);
  Rw.Rewrite.on_event :=
    (function
     | Rw.Rewrite.Candidate -> record Key.rewriting_candidates
     | Rw.Rewrite.Verified -> record Key.rewriting_verified
     | Rw.Rewrite.Kept -> record Key.rewriting_kept)
