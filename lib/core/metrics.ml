module Cq = Dc_cq
module Rw = Dc_rewriting

module Key = struct
  let eval_index_builds = "eval_index_builds"
  let eval_cache_hits = "eval_cache_hits"
  let eval_cache_misses = "eval_cache_misses"
  let plan_compiles = "plan_compiles"
  let eval_plan_hits = "eval_plan_hits"
  let leaf_cache_hits = "leaf_cache_hits"
  let leaf_cache_misses = "leaf_cache_misses"
  let plan_cache_hits = "plan_cache_hits"
  let plan_cache_misses = "plan_cache_misses"
  let rewriting_candidates = "rewriting_candidates"
  let rewriting_verified = "rewriting_verified"
  let rewriting_kept = "rewriting_kept"
  let containment_checks = "containment_checks"
  let engine_lock_waits = "engine_lock_waits"
  let server_requests = "server_requests"
  let server_errors = "server_errors"
  let server_queue_depth = "server_queue_depth"
  let server_busy_sheds = "server_busy_sheds"
  let server_batches = "server_batches"
  let version_commits = "version_commits"
  let version_cache_hits = "version_cache_hits"
  let version_cache_misses = "version_cache_misses"
  let version_cache_evictions = "version_cache_evictions"
  let registrations_maintained = "registrations_maintained"
  let wal_appends = "wal_appends"
  let wal_fsyncs = "wal_fsyncs"
  let wal_group_commits = "wal_group_commits"
  let snapshots_written = "snapshots_written"
  let recovery_replayed_deltas = "recovery_replayed_deltas"
  let datalog_fixpoints = "datalog_fixpoints"
  let datalog_iterations = "datalog_iterations"

  let all =
    [
      plan_cache_hits;
      plan_cache_misses;
      leaf_cache_hits;
      leaf_cache_misses;
      eval_cache_hits;
      eval_cache_misses;
      eval_index_builds;
      plan_compiles;
      eval_plan_hits;
      rewriting_candidates;
      rewriting_verified;
      rewriting_kept;
      containment_checks;
      engine_lock_waits;
      server_requests;
      server_errors;
      server_queue_depth;
      server_busy_sheds;
      server_batches;
      version_commits;
      version_cache_hits;
      version_cache_misses;
      version_cache_evictions;
      registrations_maintained;
      wal_appends;
      wal_fsyncs;
      wal_group_commits;
      snapshots_written;
      recovery_replayed_deltas;
      datalog_fixpoints;
      datalog_iterations;
    ]
end

let well_known =
  let h = Hashtbl.create 32 in
  List.iter (fun k -> Hashtbl.replace h k ()) Key.all;
  h

(* ------------------------------------------------------------------ *)
(* Per-domain sinks.

   The hot path ([record] / [incr] / [add_time] on every counter bump
   of every cite) touches only plain, unsynchronized fields of a sink
   owned by the recording domain: no mutex, no atomic, no cache-line
   ping-pong between domains.  A registry aggregates its sinks at read
   time instead.

   A counter carries two fields because two aggregations coexist under
   one name: [adds] (from [incr]/[record]) sums across domains, [hw]
   (from [record_max], a high-water mark) maxes across them; the
   aggregate is [sum adds + max hw], which reduces to the natural value
   when a key is used through only one of the two (every key today
   is). *)

type counter = { mutable adds : int; mutable hw : int }
type timer = { mutable total_s : float; mutable calls : int }

type sink = {
  counters : (string, counter) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
}

type t = {
  id : int;  (** unique per registry; hashes the DLS sink table *)
  mu : Mutex.t;
      (** guards the sink list and the display-order bookkeeping —
          registration and read-side aggregation only, never the
          per-event hot path *)
  mutable sinks : sink list;
  mutable dyn_counters : string list;  (** reverse first-use order *)
  dyn_counter_seen : (string, unit) Hashtbl.t;
  mutable timer_names : string list;  (** reverse first-use order *)
  timer_seen : (string, unit) Hashtbl.t;
}

let next_id = Atomic.make 0

let create () =
  {
    id = Atomic.fetch_and_add next_id 1;
    mu = Mutex.create ();
    sinks = [];
    dyn_counters = [];
    dyn_counter_seen = Hashtbl.create 8;
    timer_names = [];
    timer_seen = Hashtbl.create 8;
  }

let default = create ()

(* Each domain maps registry -> its own sink in domain-local storage.
   The table holds its keys weakly (ephemerons), so a registry — benches
   create thousands of short-lived engines, each with one — can be
   collected even though domains that recorded into it outlive it; the
   registry's own [sinks] list dies with the registry. *)
module Sink_tbl = Ephemeron.K1.Make (struct
  type registry = t
  type t = registry

  let equal = ( == )
  let hash t = t.id
end)

let local_sinks : sink Sink_tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Sink_tbl.create 16)

(* First touch of registry [t] by this domain: the only mutex in the
   recording path, taken once per (domain, registry) pair ever. *)
let register_sink t =
  let s = { counters = Hashtbl.create 24; timers = Hashtbl.create 8 } in
  Mutex.protect t.mu (fun () -> t.sinks <- s :: t.sinks);
  Sink_tbl.replace (Domain.DLS.get local_sinks) t s;
  s

let sink_for t =
  match Sink_tbl.find_opt (Domain.DLS.get local_sinks) t with
  | Some s -> s
  | None -> register_sink t

(* First use of a dynamic name (amortized: once per key per domain)
   records it in the registry's display order under the lock. *)
let counter_for t s name =
  match Hashtbl.find_opt s.counters name with
  | Some c -> c
  | None ->
      let c = { adds = 0; hw = 0 } in
      Hashtbl.add s.counters name c;
      if not (Hashtbl.mem well_known name) then
        Mutex.protect t.mu (fun () ->
            if not (Hashtbl.mem t.dyn_counter_seen name) then begin
              Hashtbl.add t.dyn_counter_seen name ();
              t.dyn_counters <- name :: t.dyn_counters
            end);
      c

let timer_for t s name =
  match Hashtbl.find_opt s.timers name with
  | Some tm -> tm
  | None ->
      let tm = { total_s = 0.; calls = 0 } in
      Hashtbl.add s.timers name tm;
      Mutex.protect t.mu (fun () ->
          if not (Hashtbl.mem t.timer_seen name) then begin
            Hashtbl.add t.timer_seen name ();
            t.timer_names <- name :: t.timer_names
          end);
      tm

let incr ?(by = 1) t name =
  let c = counter_for t (sink_for t) name in
  c.adds <- c.adds + by

let record_max t name v =
  let c = counter_for t (sink_for t) name in
  if v > c.hw then c.hw <- v

let add_time t name s =
  let tm = timer_for t (sink_for t) name in
  tm.total_s <- tm.total_s +. s;
  tm.calls <- tm.calls + 1

(* ------------------------------------------------------------------ *)
(* Read-time aggregation.  Reading another domain's plain fields while
   it records is a data race by the letter of the memory model; in
   practice it only yields a slightly stale (never torn, never
   decreasing) value, which is exactly what a monitoring read wants.
   Joining a domain before reading (the benches and tests do) makes the
   read exact. *)

let agg_counter sinks name =
  List.fold_left
    (fun (sum, hw) s ->
      match Hashtbl.find_opt s.counters name with
      | None -> (sum, hw)
      | Some c -> (sum + c.adds, max hw c.hw))
    (0, 0) sinks
  |> fun (sum, hw) -> sum + hw

let agg_timer sinks name =
  List.fold_left
    (fun (total, calls) s ->
      match Hashtbl.find_opt s.timers name with
      | None -> (total, calls)
      | Some tm -> (total +. tm.total_s, calls + tm.calls))
    (0., 0) sinks

let snapshot t =
  Mutex.protect t.mu (fun () ->
      (t.sinks, List.rev t.dyn_counters, List.rev t.timer_names))

let count t name =
  let sinks, _, _ = snapshot t in
  agg_counter sinks name

let counters t =
  let sinks, dyn, _ = snapshot t in
  List.map (fun k -> (k, agg_counter sinks k)) (Key.all @ dyn)

let timer t name =
  let sinks, _, _ = snapshot t in
  agg_timer sinks name

let timers t =
  let sinks, _, names = snapshot t in
  List.map (fun k -> (k, agg_timer sinks k)) names

let sink_count t = Mutex.protect t.mu (fun () -> List.length t.sinks)

let per_sink t name =
  let sinks, _, _ = snapshot t in
  List.filter_map
    (fun s ->
      Option.map (fun c -> c.adds + c.hw) (Hashtbl.find_opt s.counters name))
    sinks

(* Zeroing other domains' sinks is only meaningful while they are not
   recording; callers (tests, the REPL between runs) reset at
   quiescence. *)
let reset t =
  let sinks, _, _ = snapshot t in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun _ c ->
          c.adds <- 0;
          c.hw <- 0)
        s.counters;
      Hashtbl.iter
        (fun _ tm ->
          tm.total_s <- 0.;
          tm.calls <- 0)
        s.timers)
    sinks

(* ------------------------------------------------------------------ *)
(* Dynamically scoped extra sinks — a stack per domain, so scopes never
   cross domains implicitly and worker domains never touch a shared
   list.  Crossing on purpose is [Domain_pool.capture_context]'s job
   (installed below): a fan-out re-installs the submitting domain's
   stack around each task. *)

let scope_stack : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* [targets] dedups by physical equality so nested [with_sink] on the
   same registry (engine calls re-entering engine calls) never
   double-counts. *)
let targets stack =
  List.fold_left
    (fun acc m -> if List.memq m acc then acc else m :: acc)
    [ default ] stack

let with_sink m f =
  let st = Domain.DLS.get scope_stack in
  st := m :: !st;
  Fun.protect
    ~finally:(fun () ->
      (* remove {e this} scope's frame — the first physically-equal
         one — wherever unwinding finds it *)
      let rec drop = function
        | [] -> []
        | x :: rest -> if x == m then rest else x :: drop rest
      in
      st := drop !st)
    f

let record ?by name =
  List.iter
    (fun m -> incr ?by m name)
    (targets !(Domain.DLS.get scope_stack))

let record_time name f =
  let t0 = Dc_clock.Monotonic.now_s () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Dc_clock.Monotonic.now_s () -. t0 in
      List.iter
        (fun m -> add_time m name dt)
        (targets !(Domain.DLS.get scope_stack)))
    f

(* ------------------------------------------------------------------ *)

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-22s = %d@." k v) (counters t);
  List.iter
    (fun (k, (total, calls)) ->
      Format.fprintf ppf "%-22s : %.3f ms / %d call%s@." k (total *. 1000.)
        calls
        (if calls = 1 then "" else "s"))
    (timers t)

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:%d" k v))
    (counters t);
  Buffer.add_string buf "},\"timers\":{";
  List.iteri
    (fun i (k, (total, calls)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%S:{\"ms\":%.3f,\"calls\":%d}" k (total *. 1000.)
           calls))
    (timers t);
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Route the lower layers' instrumentation hooks into the registries,
   and teach Domain_pool fan-outs to carry the submitting domain's sink
   scopes onto worker domains (each worker still records into its own
   per-domain sink of the scoped registries — propagation shares the
   {e scope}, not the storage).  Runs once when dc_citation is
   linked. *)
let () =
  Cq.Eval.on_event :=
    (function
     | Cq.Eval.Index_build -> record Key.eval_index_builds
     | Cq.Eval.Cache_hit -> record Key.eval_cache_hits
     | Cq.Eval.Cache_miss -> record Key.eval_cache_misses
     | Cq.Eval.Plan_compile -> record Key.plan_compiles
     | Cq.Eval.Plan_hit -> record Key.eval_plan_hits);
  (Cq.Eval.plan_timer := fun f -> record_time "plan_compile" f);
  Cq.Containment.on_check := (fun () -> record Key.containment_checks);
  (* Storage instrumentation: counter names are the Key.* above
     (wal_appends, wal_fsyncs, snapshots_written,
     recovery_replayed_deltas); timer names (wal_append, wal_fsync,
     snapshot_write, snapshot_load, recovery_replay) surface through
     [timers]/STATS like any other. *)
  Dc_storage.Hooks.count := (fun name by -> record ~by name);
  Dc_storage.Hooks.time := (fun name f -> record_time name f);
  Rw.Rewrite.on_event :=
    (function
     | Rw.Rewrite.Candidate -> record Key.rewriting_candidates
     | Rw.Rewrite.Verified -> record Key.rewriting_verified
     | Rw.Rewrite.Kept -> record Key.rewriting_kept);
  Cq.Seminaive.on_event :=
    (function
     | Cq.Seminaive.Fixpoint -> record Key.datalog_fixpoints
     | Cq.Seminaive.Iteration -> record Key.datalog_iterations);
  (Cq.Seminaive.run_timer := fun f -> record_time "datalog_fixpoint" f);
  let previous = !Dc_parallel.Domain_pool.capture_context in
  Dc_parallel.Domain_pool.capture_context :=
    fun () ->
      let stack = !(Domain.DLS.get scope_stack) in
      let wrap_prev = previous () in
      fun task ->
        let task = wrap_prev task in
        fun () ->
          let st = Domain.DLS.get scope_stack in
          let saved = !st in
          st := stack;
          Fun.protect ~finally:(fun () -> st := saved) task
