module R = Dc_relational
module Cq = Dc_cq

type t = {
  version : R.Version_store.version;
  timestamp : int option;
  query_text : string;
  expr : Cite_expr.t;
  citations : Citation.Set.t;
  tuples : R.Tuple.t list;
}

(* ------------------------------------------------------------------ *)
(* Content digests.  Relations iterate in Tuple.compare order and the
   database lists relations in name order, so the rendering below is a
   canonical form: two structurally equal databases digest identically
   regardless of construction order.  Field separators are control
   bytes that Value.to_string never emits for well-behaved data. *)

let digest_db db =
  let buf = Buffer.create 4096 in
  List.iter
    (fun rel ->
      Buffer.add_string buf (R.Relation.name rel);
      Buffer.add_char buf '\x00';
      R.Relation.iter
        (fun t ->
          Array.iter
            (fun v ->
              Buffer.add_string buf (R.Value.to_string v);
              Buffer.add_char buf '\x01')
            t;
          Buffer.add_char buf '\x02')
        rel;
      Buffer.add_char buf '\x03')
    (R.Database.relations db);
  Digest.to_hex (Digest.string (Buffer.contents buf))

type stamp = {
  stamp_version : R.Version_store.version;
  stamp_at : int option;
  stamp_digest : string;
}

let digest_at ~store version =
  match R.Version_store.checkout store version with
  | None -> Error (Printf.sprintf "version %d not in store" version)
  | Some db -> Ok (digest_db db)

let stamp ~store version =
  Result.map
    (fun d ->
      {
        stamp_version = version;
        stamp_at = R.Version_store.timestamp store version;
        stamp_digest = d;
      })
    (digest_at ~store version)

let verify_digest ~store version digest =
  Result.map (fun d -> String.equal d digest) (digest_at ~store version)

let cite ?policy ?selection ~store ~views query =
  let db = R.Version_store.head_db store in
  let engine = Engine.create ?policy ?selection db views in
  let result = Engine.cite engine query in
  {
    version = R.Version_store.head store;
    timestamp = R.Version_store.timestamp store (R.Version_store.head store);
    query_text = Cq.Query.to_string query;
    expr = result.result_expr;
    citations = result.result_citations;
    tuples = List.map (fun (tc : Engine.tuple_citation) -> tc.tuple) result.tuples;
  }

let cite_at ?policy ?selection ~store ~views ~version query =
  match R.Version_store.checkout store version with
  | None -> Error (Printf.sprintf "version %d not in store" version)
  | Some db ->
      let engine = Engine.create ?policy ?selection db views in
      let result = Engine.cite engine query in
      Ok
        {
          version;
          timestamp = R.Version_store.timestamp store version;
          query_text = Cq.Query.to_string query;
          expr = result.result_expr;
          citations = result.result_citations;
          tuples =
            List.map (fun (tc : Engine.tuple_citation) -> tc.tuple) result.tuples;
        }

let cite_at_time ?policy ?selection ~store ~views ~time query =
  match R.Version_store.version_at store time with
  | None -> Error (Printf.sprintf "no version at or before time %d" time)
  | Some version -> cite_at ?policy ?selection ~store ~views ~version query

let resolve ~store ~views vc =
  match R.Version_store.checkout store vc.version with
  | None -> Error (Printf.sprintf "version %d not in store" vc.version)
  | Some db -> (
      match Cq.Parser.parse_query vc.query_text with
      | Error e -> Error e
      | Ok query ->
          let engine = Engine.create db views in
          let result = Engine.cite engine query in
          Ok
            (List.map
               (fun (tc : Engine.tuple_citation) -> tc.tuple)
               result.tuples))

let verify ~store ~views vc =
  match resolve ~store ~views vc with
  | Error _ -> false
  | Ok tuples ->
      List.length tuples = List.length vc.tuples
      && List.for_all2 R.Tuple.equal tuples vc.tuples

let pp ppf vc =
  Format.fprintf ppf
    "@[<v>cited at version %d%a@ query: %s@ formal: %a@ %a@]" vc.version
    (fun ppf -> function
      | None -> ()
      | Some ts -> Format.fprintf ppf " (time %d)" ts)
    vc.timestamp vc.query_text Cite_expr.pp vc.expr Citation.Set.pp
    vc.citations
