module Cq = Dc_cq
module R = Dc_relational
module VS = R.Version_store

let log_src =
  Logs.Src.create "datacite.versioned" ~doc:"Versioned citation engine"

module Log = (val Logs.src_log log_src)

type t = {
  (* Pristine replica used only as the template for per-version
     engines: [Engine.refresh template db] inherits every creation
     parameter (policy, selection, partial, fallback, pool) and the
     shared metrics registry; the subsequent [replicate] gives the new
     engine private caches and a private lock so versions never contend
     with each other. *)
  template : Engine.t;
  metrics : Metrics.t;
  capacity : int;
  mutable store : VS.t;
  (* MRU-first assoc list of materialized per-version engines, trimmed
     to [capacity] (the head version is never evicted). *)
  mutable engines : (VS.version * Engine.t) list;
  (* Version digests are tiny and versions are immutable, so digests
     are cached forever — fixity verification of an evicted version
     must not depend on LRU luck. *)
  digests : (VS.version, string) Hashtbl.t;
  (* Head-version incremental registrations, keyed by the registered
     query's rendering.  Mutated only under [commit_mu]. *)
  mutable regs : (string * Incremental.t) list;
  (* Durable backing, when armed ([set_durability]): commits and
     registrations append to its WAL {e before} publishing, so the
     in-memory head never runs ahead of the log.  Read and written only
     under [commit_mu]. *)
  mutable durability : Dc_storage.Store.t option;
  (* [mu] guards every mutable field for brief reads/swaps; [commit_mu]
     serializes whole commits and registrations.  Order: [commit_mu]
     may take [mu]; never the reverse.  Nothing slow (materialization,
     citation, delta maintenance) runs under [mu], so in-flight
     [cite_at] calls never block on a concurrent commit. *)
  mu : Mutex.t;
  commit_mu : Mutex.t;
}

type cited = {
  version : VS.version;
  timestamp : int option;
  digest : string;
  result : Engine.result;
  from_registration : bool;
}

let locked t f = Mutex.protect t.mu f
let committing t f = Mutex.protect t.commit_mu f

let of_engine ?(capacity = 4) ?store eng =
  if capacity < 1 then
    invalid_arg "Versioned_engine.of_engine: capacity must be >= 1";
  let store, engines =
    match store with
    | None -> (VS.create (Engine.database eng), [ (0, eng) ])
    | Some s ->
        (* A recovered store: the given engine's database is whatever
           it was created over (typically the version-0 load), which
           need not be [s]'s head — cache nothing and let [engine_at]
           materialize versions from the template on demand. *)
        (s, [])
  in
  {
    template = Engine.replicate eng;
    metrics = Engine.metrics eng;
    capacity;
    store;
    engines;
    digests = Hashtbl.create 8;
    regs = [];
    mu = Mutex.create ();
    commit_mu = Mutex.create ();
    durability = None;
  }

let create ?policy ?selection ?partial ?fallback_contained ?pool ?capacity
    ?metrics db views =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  of_engine ?capacity
    (Engine.create ?policy ?selection ?partial ?fallback_contained ?pool
       ~metrics db views)

let create_program ?policy ?selection ?partial ?fallback_contained ?pool
    ?capacity ?metrics ?views db prog =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  of_engine ?capacity
    (Engine.of_program ?policy ?selection ?partial ?fallback_contained ?pool
       ~metrics ?views db prog)

let template t = t.template

let set_durability t store =
  committing t (fun () -> t.durability <- Some store)

let snapshot t = locked t (fun () -> t.store)
let store = snapshot
let head t = VS.head (snapshot t)
let versions t = VS.versions (snapshot t)
let timestamp t v = VS.timestamp (snapshot t) v
let metrics t = t.metrics
let capacity t = t.capacity
let cached_versions t = locked t (fun () -> List.map fst t.engines)
let registrations t = locked t (fun () -> List.map fst t.regs)

(* Evict LRU entries beyond [capacity], never the head version: a burst
   of historical [cite_at]s must not cold-start the head hot path. *)
let trim_unlocked t =
  let hd = VS.head t.store in
  let excess = List.length t.engines - t.capacity in
  if excess > 0 then begin
    let dropped = ref 0 in
    let kept_lru_first =
      List.filter
        (fun (v, _) ->
          if !dropped < excess && v <> hd then begin
            incr dropped;
            false
          end
          else true)
        (List.rev t.engines)
    in
    t.engines <- List.rev kept_lru_first;
    if !dropped > 0 then
      Metrics.with_sink t.metrics (fun () ->
          Metrics.record ~by:!dropped Metrics.Key.version_cache_evictions)
  end

let engine_at t v =
  let cached =
    locked t (fun () ->
        match List.assoc_opt v t.engines with
        | Some eng ->
            t.engines <- (v, eng) :: List.remove_assoc v t.engines;
            Some eng
        | None -> None)
  in
  match cached with
  | Some eng ->
      Metrics.with_sink t.metrics (fun () ->
          Metrics.record Metrics.Key.version_cache_hits);
      Ok eng
  | None -> (
      match VS.checkout (snapshot t) v with
      | None -> Error (Printf.sprintf "version %d not in store" v)
      | Some db ->
          Metrics.with_sink t.metrics (fun () ->
              Metrics.record Metrics.Key.version_cache_misses);
          (* Materialization runs outside [mu]; a concurrent miss on the
             same version may build twice, the race loser's engine is
             dropped. *)
          let eng =
            Metrics.with_sink t.metrics (fun () ->
                Metrics.record_time "version_materialize" (fun () ->
                    Engine.replicate (Engine.refresh t.template db)))
          in
          Log.debug (fun m -> m "materialized engine for version %d" v);
          Ok
            (locked t (fun () ->
                 match List.assoc_opt v t.engines with
                 | Some raced -> raced
                 | None ->
                     t.engines <- (v, eng) :: t.engines;
                     trim_unlocked t;
                     eng)))

let digest_at t v =
  match locked t (fun () -> Hashtbl.find_opt t.digests v) with
  | Some d -> Ok d
  | None -> (
      match VS.checkout (snapshot t) v with
      | None -> Error (Printf.sprintf "version %d not in store" v)
      | Some db ->
          let d =
            Metrics.with_sink t.metrics (fun () ->
                Metrics.record_time "fixity_digest" (fun () ->
                    Fixity.digest_db db))
          in
          locked t (fun () ->
              if not (Hashtbl.mem t.digests v) then Hashtbl.add t.digests v d);
          Ok d)

let verify t v digest =
  Result.map (fun d -> String.equal d digest) (digest_at t v)

let stamped t v ~from_registration result =
  Result.map
    (fun digest ->
      {
        version = v;
        timestamp = VS.timestamp (snapshot t) v;
        digest;
        result;
        from_registration;
      })
    (digest_at t v)

let reg_key q = Cq.Query.to_string q

let cite_at t v q =
  let from_reg =
    locked t (fun () ->
        if v = VS.head t.store then List.assoc_opt (reg_key q) t.regs
        else None)
  in
  match from_reg with
  | Some reg -> stamped t v ~from_registration:true (Incremental.to_result reg)
  | None ->
      Result.bind (engine_at t v) (fun eng ->
          stamped t v ~from_registration:false (Engine.cite eng q))

let cite t q = cite_at t (head t) q

let cite_string t src =
  match Cq.Parser.parse_query src with
  | Error e -> Error e
  | Ok q -> Result.map (fun c -> c.result) (cite t q)

(* Incremental maintenance propagates deltas through {e base} relations
   only ({!Incremental.apply_delta} reads [Delta.relations_touched]):
   an extent derived by the Datalog engine changes when its EDB inputs
   change, but no delta ever names it, so a registration reading one —
   directly or through a citation view whose definition mentions one —
   would serve stale answers forever.  Silent staleness being the
   failure mode, such registrations are refused loudly here; recursive
   predicates would additionally need fixpoint re-iteration per delta.
   Clients re-cite after commit instead ([cite_at] re-derives). *)
let guard_derived eng q reg =
  match Engine.derived_predicates eng with
  | [] -> Ok ()
  | derived -> (
      let cviews = Engine.citation_views eng in
      let reads_of rw =
        List.concat_map
          (fun p ->
            match Citation_view.Set.find cviews p with
            | Some cv ->
                p :: Cq.Query.predicates (Citation_view.definition cv)
            | None -> [ p ])
          (Cq.Query.predicates rw)
      in
      let reads =
        List.concat_map reads_of
          (Cq.Query.strip_params q :: Incremental.selected reg)
      in
      match List.find_opt (fun p -> List.mem p derived) reads with
      | None -> Ok ()
      | Some p ->
          let recursive =
            List.mem p (Engine.recursive_predicates eng)
          in
          Error
            (Printf.sprintf
               "REGISTER refused: query %s reads %s predicate %s; \
                incremental maintenance over Datalog-derived predicates \
                is not supported (deltas name base relations only, so \
                the registration would go stale silently) — cite after \
                each commit instead"
               (Cq.Query.name q)
               (if recursive then "recursive Datalog" else "Datalog-derived")
               p))

let register_gen ~durable t q =
  committing t @@ fun () ->
  let hd = VS.head t.store in
  Result.bind (engine_at t hd) @@ fun eng ->
  (* Register on a private replica: [Incremental] evaluates with
     the raw eval-cache handle, bypassing the engine lock, so it
     must never share caches with an engine serving concurrent
     citations. *)
  let reg = Incremental.register (Engine.replicate eng) q in
  Result.bind (guard_derived eng q reg) @@ fun () ->
  let key = reg_key q in
  let logged =
    match t.durability with
    | Some d when durable -> Dc_storage.Store.append_register d key
    | _ -> Ok ()
  in
  Result.map
    (fun () ->
      locked t (fun () ->
          t.regs <- (key, reg) :: List.remove_assoc key t.regs))
    logged

let register t q = register_gen ~durable:true t q

(* Recovery re-arming: the WAL already holds this registration, so
   appending it again on every restart would grow the log with
   duplicates. *)
let rearm t q = register_gen ~durable:false t q

let commit_delta t delta =
  committing t @@ fun () ->
  match VS.apply_head t.store delta with
  | exception Not_found ->
      Error "delta touches a relation absent from the database"
  | exception Invalid_argument e -> Error e
  | new_db -> (
      let store', v = VS.commit t.store new_db in
      (* WAL before publish: the delta becomes durable (to the armed
         fsync policy) while [t.store] still shows the old head.  An
         append failure aborts the commit — the caller sees Error and
         no state changed, so the log can never lag the head. *)
      let logged =
        match t.durability with
        | None -> Ok ()
        | Some d ->
            let at = Option.value ~default:0 (VS.timestamp store' v) in
            Dc_storage.Store.append_commit d ~version:v ~at delta
      in
      match logged with
      | Error e -> Error ("commit not durable: " ^ e)
      | Ok () ->
      (* Registrations advance through the SAME database value the
         store commits ([apply_head] computed it once): head and
         derived state cannot diverge. *)
      let regs' =
        List.map
          (fun (k, reg) ->
            (k, Incremental.apply_delta ~new_base:new_db reg delta))
          t.regs
      in
      Metrics.with_sink t.metrics (fun () ->
          Metrics.record Metrics.Key.version_commits;
          match regs' with
          | [] -> ()
          | _ :: _ ->
              Metrics.record
                ~by:(List.length regs')
                Metrics.Key.registrations_maintained);
      Log.debug (fun m ->
          m "commit_delta: version %d, %d registration(s) maintained" v
            (List.length regs'));
      locked t (fun () ->
          t.store <- store';
          t.regs <- regs';
          trim_unlocked t);
      Ok v)

let pp ppf t =
  let store, cached, regs =
    locked t (fun () -> (t.store, List.map fst t.engines, List.map fst t.regs))
  in
  Format.fprintf ppf
    "@[<v>head      : %d@,versions  : %d@,cached    : [%s]@,capacity  : \
     %d@,registered: %d@]"
    (VS.head store)
    (List.length (VS.versions store))
    (String.concat "; " (List.map string_of_int cached))
    t.capacity (List.length regs)
