(** An interactive shell for defining citation views and citing queries
    — a concrete answer to the paper's §3 call for "a user-friendly
    interface with appropriate defaults".

    The evaluator is a pure function from a state and an input line to
    a new state and a reply, so front ends (the [datacite-repl] binary,
    tests) just drive it.  Commands:

    {v
      help                       this text
      load data <dir>            CSV database (schema.spec + *.csv)
      load views <file>          view spec file
      defaults [blurb]           install generated default views
      view <CQ>                  begin a citation view definition
      cite <CQ>                  attach a citation query to it
      done                       finish the pending view
      views                      list installed views
      policy <k>=<v> ...         joint|alt|agg=union|join,
                                 alt_r=min-size|keep-all|first
      q <CQ>                     cite a Datalog query
      sql <SELECT ...>           cite a SQL query
      page <view> [k=v ...]      render a web-page view
      bib                        show the bibliography of cited queries
      :stats                     engine metrics (cache hit rates, timers)
    v}

    The engine is cached across queries and rebuilt only when the
    database, views, policy or selection change, so repeated citations
    hit the engine's rewriting-plan cache. *)

type state

val initial : state

val eval : state -> string -> state * string
(** Never raises; errors come back as the reply text.  Empty lines and
    [#] comments reply with [""]. *)

val eval_script : state -> string list -> state * string list
(** Folds {!eval} over the lines, collecting non-empty replies. *)
