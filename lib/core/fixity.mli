(** Versioned citations — the paper's {e fixity} principle (§3).

    "Data may evolve over time, and a citation should bring back the
    data as seen at the time it was cited."  A versioned citation
    couples the concrete citation with the database version, its commit
    timestamp, and the query text, so the cited data can be re-obtained
    from the {!Dc_relational.Version_store} even after the database
    moves on. *)

(** {2 Content digests}

    A fixity {e digest} is a cryptographic hash of a full database
    version in a canonical rendering (relations in name order, tuples in
    value order), so "the data as seen at the time it was cited" can be
    checked, not just re-obtained: a citation carrying the digest of its
    version detects any tampering with the stored version. *)

val digest_db : Dc_relational.Database.t -> string
(** Hex digest of the database's canonical rendering.  Structurally
    equal databases digest identically regardless of construction
    order; any tuple change, in any relation, changes the digest. *)

type stamp = {
  stamp_version : Dc_relational.Version_store.version;
  stamp_at : int option;  (** commit timestamp, when known *)
  stamp_digest : string;  (** {!digest_db} of the version *)
}
(** What a versioned citation result is stamped with — see
    {!Versioned_engine}. *)

val digest_at :
  store:Dc_relational.Version_store.t ->
  Dc_relational.Version_store.version ->
  (string, string) result

val stamp :
  store:Dc_relational.Version_store.t ->
  Dc_relational.Version_store.version ->
  (stamp, string) result

val verify_digest :
  store:Dc_relational.Version_store.t ->
  Dc_relational.Version_store.version ->
  string ->
  (bool, string) result
(** [verify_digest ~store v d] is [Ok true] iff version [v] exists and
    its recomputed digest equals [d]. *)

type t = {
  version : Dc_relational.Version_store.version;
  timestamp : int option;
  query_text : string;
  expr : Cite_expr.t;
  citations : Citation.Set.t;
  tuples : Dc_relational.Tuple.t list;  (** the cited answer *)
}

val cite :
  ?policy:Policy.t ->
  ?selection:Engine.selection ->
  store:Dc_relational.Version_store.t ->
  views:Citation_view.t list ->
  Dc_cq.Query.t ->
  t
(** Cites against the store's head version. *)

val cite_at :
  ?policy:Policy.t ->
  ?selection:Engine.selection ->
  store:Dc_relational.Version_store.t ->
  views:Citation_view.t list ->
  version:Dc_relational.Version_store.version ->
  Dc_cq.Query.t ->
  (t, string) result
(** Cites against a specific historical version. *)

val cite_at_time :
  ?policy:Policy.t ->
  ?selection:Engine.selection ->
  store:Dc_relational.Version_store.t ->
  views:Citation_view.t list ->
  time:int ->
  Dc_cq.Query.t ->
  (t, string) result
(** Cites against the latest version committed at or before [time] —
    the paper's "citations to include a timestamp or version number"
    alternative. *)

val resolve :
  store:Dc_relational.Version_store.t ->
  views:Citation_view.t list ->
  t ->
  (Dc_relational.Tuple.t list, string) result
(** Re-executes the cited query at the cited version; this is the
    "mechanism of obtaining the data" the citation must include. *)

val verify :
  store:Dc_relational.Version_store.t ->
  views:Citation_view.t list ->
  t ->
  bool
(** [resolve] returns exactly the cited tuples. *)

val pp : Format.formatter -> t -> unit
