module R = Dc_relational
module Cq = Dc_cq

type state = {
  db : R.Database.t option;
  views : Citation_view.t list;
  program : Cq.Program.t option;
      (* Datalog program: its exports become citation views and its IDB
         predicates are materialized into the engine's derived layer *)
  pending_view : Cq.Query.t option;
  pending_cites : Cq.Query.t list;
  policy : Policy.t;
  selection : Engine.selection;
  bibliography : Bibliography.t;
  last : (Engine.t * Engine.result) option;
  engine : Engine.t option;
      (* cached across queries so repeated citations hit the engine's
         rewriting-plan cache; dropped whenever the database, views,
         policy or selection change *)
}

let initial =
  {
    db = None;
    views = [];
    program = None;
    pending_view = None;
    pending_cites = [];
    policy = Policy.default;
    selection = `Min_estimated_size;
    bibliography = Bibliography.create ();
    last = None;
    engine = None;
  }

let help_text =
  "commands:\n\
  \  load data <dir>      load a CSV database (schema.spec + *.csv)\n\
  \  load views <file>    load a view spec file\n\
  \  load program <file>  load a Datalog program (rules, export, cite)\n\
  \  defaults [blurb]     install generated default citation views\n\
  \  view <CQ>            begin a citation view definition\n\
  \  cite <CQ>            attach a citation query to the pending view\n\
  \  done                 finish the pending view\n\
  \  views                list installed citation views\n\
  \  policy k=v ...       joint|alt|agg=union|join, alt_r=min-size|keep-all|first\n\
  \  q <CQ>               cite a Datalog query\n\
  \  sql <SELECT ...>     cite a SQL query\n\
  \  why <v1> [v2 ...]    explain the last result's tuple (v1,...)\n\
  \  page <view> [k=v]    render a web-page view with its citation\n\
  \  bib                  show the bibliography of cited queries\n\
  \  :stats               engine metrics (cache hit rates, timers)\n\
  \  :serve               how to serve citations over TCP (datacite-server)\n\
  \  help                 this text"

let serve_text =
  "the shell is single-user; to serve citations over TCP run the daemon:\n\
  \  datacite-server --data <dir> --views <file> [--port 7421] [--workers 4]\n\
   it loads the same specs, keeps one warm engine, and answers\n\
   CITE / CITE_PARAM / STATS / HEALTH / QUIT as one-line JSON\n\
   (see README \"Running the server\"; datacite-bench-client load-tests it)"

(* finalize the pending view definition, if any *)
let flush_pending st =
  match st.pending_view with
  | None -> Ok st
  | Some view -> (
      match Citation_view.make ~view ~citations:(List.rev st.pending_cites) () with
      | Error e -> Error e
      | Ok cv ->
          Ok
            {
              st with
              views = st.views @ [ cv ];
              pending_view = None;
              pending_cites = [];
              engine = None;
            })

let with_db st f =
  match st.db with
  | None -> (st, "no database loaded (use: load data <dir>)")
  | Some db -> f db

(* Reuse the cached engine when nothing it depends on has changed —
   every command mutating db/views/policy/selection resets [engine] to
   [None] — so repeated queries keep its plan and leaf caches warm. *)
let build_engine st db =
  match st.engine with
  | Some engine -> Ok (st, engine)
  | None -> (
      try
        let engine =
          match st.program with
          | None ->
              Engine.create ~policy:st.policy ~selection:st.selection db
                st.views
          | Some program ->
              Engine.of_program ~policy:st.policy ~selection:st.selection
                ~views:st.views db program
        in
        Ok ({ st with engine = Some engine }, engine)
      with Invalid_argument e -> Error e)

let show_result st (result : Engine.result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "rewritings: %d (evaluated %d)%s\n"
       (List.length result.rewritings)
       (List.length result.selected)
       (if result.complete then "" else " [best-effort: answer may be partial]"));
  List.iter
    (fun (tc : Engine.tuple_citation) ->
      Buffer.add_string buf
        (Format.asprintf "%a : %a\n" R.Tuple.pp tc.tuple Cite_expr.pp tc.expr))
    result.tuples;
  let key = Bibliography.add_result st.bibliography result in
  Buffer.add_string buf
    (Fmt_citation.render Fmt_citation.Human result.result_citations);
  Buffer.add_string buf (Printf.sprintf "\n-> bibliography entry %s" key);
  Buffer.contents buf

let cite_query st q =
  match flush_pending st with
  | Error e -> (st, e)
  | Ok st ->
      with_db st (fun db ->
          match build_engine st db with
          | Error e -> (st, e)
          | Ok (st, engine) -> (
              try
                let result = Citer.cite (Citer.of_engine engine) q in
                ( { st with last = Some (engine, result) },
                  show_result st result )
              with Cq.Eval.Unknown_relation r ->
                (st, Printf.sprintf "unknown relation %s" r)))

let parse_policy_setting st setting =
  match String.split_on_char '=' setting with
  | [ key; value ] -> (
      let combiner () =
        match value with
        | "union" -> Ok Policy.Union
        | "join" -> Ok Policy.Join
        | _ -> Error (Printf.sprintf "unknown combiner %s" value)
      in
      match key with
      | "joint" ->
          Result.map (fun c -> { st with policy = { st.policy with joint = c } }) (combiner ())
      | "alt" ->
          Result.map (fun c -> { st with policy = { st.policy with alt = c } }) (combiner ())
      | "agg" ->
          Result.map (fun c -> { st with policy = { st.policy with agg = c } }) (combiner ())
      | "alt_r" | "+R" -> (
          match value with
          | "min-size" ->
              Ok { st with policy = { st.policy with alt_r = Policy.Min_size };
                           selection = `Min_estimated_size }
          | "keep-all" ->
              Ok { st with policy = { st.policy with alt_r = Policy.Keep_all };
                           selection = `All }
          | "first" ->
              Ok { st with policy = { st.policy with alt_r = Policy.First };
                           selection = `All }
          | _ -> Error (Printf.sprintf "unknown +R policy %s" value))
      | _ -> Error (Printf.sprintf "unknown policy key %s" key))
  | _ -> Error (Printf.sprintf "expected key=value, got %s" setting)

let split_first line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line i (String.length line - i)) )

let parse_kv s =
  match String.index_opt s '=' with
  | None -> None
  | Some i ->
      let name = String.sub s 0 i in
      let value = String.sub s (i + 1) (String.length s - i - 1) in
      let v =
        match int_of_string_opt value with
        | Some n -> R.Value.Int n
        | None -> R.Value.Str value
      in
      Some (name, v)

let eval st line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then (st, "")
  else
    let cmd, rest = split_first line in
    match String.lowercase_ascii cmd with
    | "help" -> (st, help_text)
    | "load" -> (
        let sub, arg = split_first rest in
        match String.lowercase_ascii sub with
        | "data" -> (
            match Spec.load_database ~dir:arg with
            | Ok db ->
                ( { st with db = Some db; engine = None },
                  Printf.sprintf "loaded %d relations, %d tuples"
                    (List.length (R.Database.relation_names db))
                    (R.Database.total_tuples db) )
            | Error e -> (st, e))
        | "views" -> (
            if not (Sys.file_exists arg) then (st, "no such file: " ^ arg)
            else
              let ic = open_in arg in
              let contents = really_input_string ic (in_channel_length ic) in
              close_in ic;
              match Spec.parse_views contents with
              | Ok vs ->
                  ( { st with views = st.views @ vs; engine = None },
                    Printf.sprintf "loaded %d views" (List.length vs) )
              | Error e -> (st, e))
        | "program" -> (
            if not (Sys.file_exists arg) then (st, "no such file: " ^ arg)
            else
              let ic = open_in arg in
              let contents = really_input_string ic (in_channel_length ic) in
              close_in ic;
              match Cq.Program.parse contents with
              | Ok p ->
                  ( { st with program = Some p; engine = None },
                    Printf.sprintf
                      "loaded program: %d rules in %d strata, %d derived \
                       predicate(s)%s, %d export(s)"
                      (List.length (Cq.Program.rules p))
                      (List.length (Cq.Program.strata p))
                      (List.length (Cq.Program.idb_preds p))
                      (match Cq.Program.recursive_preds p with
                      | [] -> ""
                      | rs ->
                          Printf.sprintf " (recursive: %s)"
                            (String.concat ", " rs))
                      (List.length (Cq.Program.exports p)) )
              | Error e -> (st, e))
        | _ -> (st, "usage: load data <dir> | load views <file> | load program <file>"))
    | "defaults" ->
        with_db st (fun db ->
            let blurb = if rest = "" then "this database" else rest in
            let vs = Defaults.views_for_database ~blurb db in
            ( { st with views = st.views @ vs; engine = None },
              Printf.sprintf "installed %d default views: %s" (List.length vs)
                (String.concat ", " (List.map Citation_view.name vs)) ))
    | "view" -> (
        match flush_pending st with
        | Error e -> (st, e)
        | Ok st -> (
            match Cq.Parser.parse_query rest with
            | Ok q ->
                ( { st with pending_view = Some q; pending_cites = [] },
                  Printf.sprintf "view %s pending; add 'cite' queries, then 'done'"
                    (Cq.Query.name q) )
            | Error e -> (st, e)))
    | "cite" -> (
        match st.pending_view with
        | None -> (st, "no pending view (start with: view <CQ>)")
        | Some _ -> (
            match Cq.Parser.parse_query rest with
            | Ok q ->
                ( { st with pending_cites = q :: st.pending_cites },
                  Printf.sprintf "citation query %s attached" (Cq.Query.name q) )
            | Error e -> (st, e)))
    | "done" -> (
        match flush_pending st with
        | Error e -> (st, e)
        | Ok st' ->
            if st'.views == st.views && st.pending_view = None then
              (st', "nothing pending")
            else
              ( st',
                Printf.sprintf "views installed: %s"
                  (String.concat ", " (List.map Citation_view.name st'.views)) ))
    | "views" -> (
        match flush_pending st with
        | Error e -> (st, e)
        | Ok st ->
            ( st,
              if st.views = [] then "no views installed"
              else String.concat ", " (List.map Citation_view.name st.views) ))
    | "policy" ->
        if rest = "" then (st, Policy.to_string st.policy)
        else
          let settings = String.split_on_char ' ' rest in
          let result =
            List.fold_left
              (fun acc s ->
                match acc with
                | Error _ -> acc
                | Ok st -> parse_policy_setting st (String.trim s))
              (Ok st)
              (List.filter (fun s -> String.trim s <> "") settings)
          in
          (match result with
          | Ok st' ->
              ( { st' with engine = None },
                "policy: " ^ Policy.to_string st'.policy )
          | Error e -> (st, e))
    | "q" -> (
        match Cq.Parser.parse_query rest with
        | Ok q -> cite_query st q
        | Error e -> (st, e))
    | "sql" ->
        with_db st (fun db ->
            let schemas = List.map R.Relation.schema (R.Database.relations db) in
            match Cq.Sql.compile ~schemas rest with
            | Ok q -> cite_query st q
            | Error e -> (st, e))
    | "page" -> (
        match flush_pending st with
        | Error e -> (st, e)
        | Ok st ->
            with_db st (fun db ->
                match build_engine st db with
                | Error e -> (st, e)
                | Ok (st, engine) -> (
                    let view, kvs = split_first rest in
                    let params =
                      List.filter_map parse_kv (String.split_on_char ' ' kvs)
                    in
                    match Page.render engine ~view ~params with
                    | Ok page -> (st, Page.to_text page)
                    | Error e -> (st, e))))
    | "why" -> (
        match st.last with
        | None -> (st, "no query cited yet")
        | Some (engine, result) ->
            let values =
              String.split_on_char ' ' rest
              |> List.filter (fun s -> String.trim s <> "")
              |> List.map (fun s ->
                     match int_of_string_opt s with
                     | Some n -> R.Value.Int n
                     | None -> R.Value.Str s)
            in
            if values = [] then (st, "usage: why <v1> [v2 ...]")
            else (st, Explain.render engine result (R.Tuple.make values)))
    | "bib" ->
        ( st,
          if Bibliography.entries st.bibliography = [] then "bibliography empty"
          else Bibliography.render st.bibliography )
    | "stats" | ":stats" ->
        let m, caps =
          match st.engine with
          | Some engine ->
              ( Engine.metrics engine,
                Citer.describe (Citer.of_engine engine) )
          | None ->
              ( Metrics.default,
                {
                  Citer.backend = "none";
                  supports_versions = false;
                  supports_recursion = false;
                  shards = 0;
                } )
        in
        ( st,
          Printf.sprintf "engine: %s\n%s"
            (Citer.capabilities_to_string caps)
            (String.trim (Format.asprintf "%a" Metrics.pp m)) )
    | "serve" | ":serve" -> (st, serve_text)
    | other -> (st, Printf.sprintf "unknown command %s (try: help)" other)

let eval_script st lines =
  let st, replies =
    List.fold_left
      (fun (st, acc) line ->
        let st, reply = eval st line in
        (st, if reply = "" then acc else reply :: acc))
      (st, []) lines
  in
  (st, List.rev replies)
