(** Domain-sharded citation evaluation: [N] {!Engine.t} replicas over
    one immutable database and view set.

    Shard 0 is the engine handed to {!of_engine} (or created by
    {!create}); shards 1..N-1 are {!Engine.replicate}s — same data,
    same metrics registry, {e private} plan/leaf/eval caches and a
    private lock each.  A domain working its own shard therefore never
    contends with the others: this is the parallel half of the
    shard-vs-mutex model documented in {!Engine}.

    The trade-off is cache warmth: each shard pays its own plan-cache
    misses, so a workload of [Q] distinct query shapes enumerates
    rewritings up to [N × Q] times in the worst case (round-robin) and
    exactly [Q] times when the workload is partitioned ({!cite_batch}
    partitions).  Because replicas beyond the physical core count only
    add cold caches without adding parallelism, the shard count is
    clamped to {!Dc_parallel.Domain_pool.available_cores} by default —
    on a 1-core host a "4-shard" engine degrades to a single shard. *)

type t

val create :
  ?clamp:bool ->
  ?policy:Policy.t ->
  ?selection:Engine.selection ->
  ?partial:bool ->
  ?fallback_contained:bool ->
  ?pool:Dc_parallel.Domain_pool.t ->
  shards:int ->
  Dc_relational.Database.t ->
  Citation_view.t list ->
  t
(** [Engine.create] once (views are materialized once), then
    {!of_engine}.  Raises [Invalid_argument] when [shards < 1]. *)

val of_engine : ?clamp:bool -> shards:int -> Engine.t -> t
(** Wrap an existing engine as shard 0 and add [shards - 1] replicas
    ([shards] first clamped to the core count unless [clamp:false]).
    The given engine keeps working as before — its caches become shard
    0's. *)

val shard_count : t -> int

val primary : t -> Engine.t
(** Shard 0.  Use for data-level reads (database, views) and anything
    that does not need dispatch. *)

val shard : t -> int -> Engine.t
(** [shard t i] is shard [i mod shard_count t] (any integer works). *)

val pick : t -> Engine.t
(** Round-robin over an atomic counter — safe from any thread or
    domain, including across counter overflow (the index is reduced to
    the canonical non-negative residue, so a counter that wraps past
    [max_int] keeps dispatching in range). *)

val seed_round_robin : t -> int -> unit
(** Set the round-robin counter (tests seed it near [max_int] to
    exercise overflow; not needed in normal operation). *)

val cite : t -> Dc_cq.Query.t -> Engine.result
(** [Engine.cite (pick t)]. *)

val cite_string : t -> string -> (Engine.result, string) Stdlib.result

val metrics : t -> Metrics.t
(** The registry shared by every shard (replicas share the primary's
    handle), so counters aggregate across shards. *)

val cite_batch : t -> Dc_parallel.Domain_pool.t -> Dc_cq.Query.t list ->
  Engine.result list
(** Cite a batch in parallel: the list is split into [Domain_pool.size
    pool] contiguous chunks, chunk [i] is evaluated on shard [i] (so
    each query shape is planned on exactly one shard), and results are
    returned in input order.  Determinism: equal to [List.map
    (Engine.cite _)] run sequentially. *)
