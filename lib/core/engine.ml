module Cq = Dc_cq
module R = Dc_relational
module Rw = Dc_rewriting

let log_src = Logs.Src.create "datacite.engine" ~doc:"Citation engine"

module Log = (val Logs.src_log log_src)

type selection = [ `All | `Min_estimated_size | `Min_exact_size ]

(* A memoized rewriting search result.  [canonical] is the minimized
   (core) form of the stripped query the plan was computed for: two
   queries share a plan iff their cores are equivalent, which holds iff
   the queries are.  The maximally-contained fallback is filled in
   lazily on first use. *)
type plan = {
  canonical : Cq.Query.t;
  plan_rewritings : Cq.Query.t list;
  plan_stats : Rw.Rewrite.stats;
  mutable plan_contained : (Cq.Query.t list * Rw.Rewrite.stats) option;
}

(* Two-level lookup: a cheap canonical-rendering key catches repeats of
   the same (or alpha-renamed) query with zero containment work; the
   sorted-predicate-multiset buckets catch any other equivalent form
   via Chandra-Merlin equivalence of the cores.  Plans depend only on
   the view set, never on the data, so the cache is shared by [refresh]
   and [with_databases] copies of the engine. *)
type plan_cache = {
  by_render : (string, plan) Hashtbl.t;
  by_preds : (string, plan list ref) Hashtbl.t;
}

type t = {
  base : R.Database.t;  (** EDB relations only *)
  derived : R.Database.t;
      (** IDB extents materialized from [program] by {!Dc_cq.Seminaive};
          empty for program-free engines *)
  full : R.Database.t;  (** [base] + [derived]: what citation queries see *)
  program : Cq.Program.t option;
  cviews : Citation_view.Set.t;
  views : Rw.View.Set.t;
  view_db : R.Database.t;
  policy : Policy.t;
  selection : selection;
  partial : bool;
  fallback_contained : bool;
  leaf_cache : (string, Citation.t) Hashtbl.t;
  eval_cache : Cq.Eval.cache;
  plans : plan_cache;
  metrics : Metrics.t;
  (* Optional domain pool: when present, the rewriting search inside
     [plan_for] verifies candidates in parallel across its domains. *)
  pool : Dc_parallel.Domain_pool.t option;
  (* Guards every shared mutable cache (plan, leaf, eval) so one engine
     can serve concurrent threads (the server's worker pool).  [refresh]
     and [with_databases] copies share the caches, hence also the lock;
     [replicate] shards get fresh caches and a fresh lock. *)
  lock : Mutex.t;
}

(* Every [locked] call site runs under [with_sink e.metrics], so a
   contended acquisition is charged to the engine's own registry as
   well as the default one.  [try_lock] first: the uncontended path
   costs one atomic attempt, the contended one is counted — that
   counter is exactly what E14 uses to attribute (lack of) scaling. *)
let locked e f =
  if not (Mutex.try_lock e.lock) then begin
    Metrics.record Metrics.Key.engine_lock_waits;
    Mutex.lock e.lock
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.lock) f

let materialize ?cache base cviews =
  List.fold_left
    (fun db cv ->
      let rel = Cq.Eval.result ?cache base (Citation_view.definition cv) in
      R.Database.add_relation db rel)
    R.Database.empty
    (Citation_view.Set.to_list cviews)

let merge_full base derived =
  List.fold_left R.Database.add_relation base (R.Database.relations derived)

(* Materialize a program's IDB predicates into their own database; the
   semi-naive run validates name collisions and stratification was
   checked at [Program.make] time. *)
let derive ?cache base (program : Cq.Program.t) =
  let out = Cq.Seminaive.run ?cache base program.strat in
  List.fold_left
    (fun d p -> R.Database.add_relation d (R.Database.relation_exn out p))
    R.Database.empty
    (Cq.Program.idb_preds program)

let make_engine ~policy ~selection ~partial ~fallback_contained ~pool ~metrics
    ~program ~eval_cache base derived cview_list =
  let full = merge_full base derived in
  List.iter
    (fun cv ->
      let n = Citation_view.name cv in
      if R.Database.mem_relation full n then
        invalid_arg
          (Printf.sprintf
             "Engine.create: view %s collides with a base relation" n);
      List.iter
        (fun q ->
          match Cq.Schema_check.check_query_res full q with
          | Ok () -> ()
          | Error e ->
              invalid_arg (Printf.sprintf "Engine.create: view %s: %s" n e))
        (Citation_view.definition cv :: Citation_view.citation_queries cv))
    cview_list;
  let cviews = Citation_view.Set.of_list cview_list in
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let view_db =
    Metrics.with_sink metrics (fun () ->
        Metrics.record_time "materialize" (fun () ->
            materialize ~cache:eval_cache full cviews))
  in
  {
    base;
    derived;
    full;
    program;
    cviews;
    views = Citation_view.Set.view_set cviews;
    view_db;
    policy;
    selection;
    partial;
    fallback_contained;
    leaf_cache = Hashtbl.create 64;
    eval_cache;
    (* the plan cache is keyed by the view set, which is fixed at
       creation: a fresh engine (possibly with different views) always
       starts cold *)
    plans = { by_render = Hashtbl.create 16; by_preds = Hashtbl.create 16 };
    metrics;
    pool;
    lock = Mutex.create ();
  }

let create ?(policy = Policy.default) ?(selection = `Min_estimated_size)
    ?(partial = false) ?(fallback_contained = false) ?pool ?metrics base
    cview_list =
  make_engine ~policy ~selection ~partial ~fallback_contained ~pool ~metrics
    ~program:None ~eval_cache:(Cq.Eval.make_cache ()) base R.Database.empty
    cview_list

let of_program ?(policy = Policy.default) ?(selection = `Min_estimated_size)
    ?(partial = false) ?(fallback_contained = false) ?pool ?metrics
    ?(views = []) base program =
  let eval_cache = Cq.Eval.make_cache () in
  let derived = derive ~cache:eval_cache base program in
  let cview_list =
    List.map
      (fun (e : Cq.Program.export) ->
        match Citation_view.make ~view:e.view ~citations:e.citations () with
        | Ok cv -> cv
        | Error err ->
            invalid_arg
              (Printf.sprintf "Engine.of_program: export %s: %s"
                 (Cq.Query.name e.view) err))
      (Cq.Program.unfold_exports program)
    @ views
  in
  make_engine ~policy ~selection ~partial ~fallback_contained ~pool ~metrics
    ~program:(Some program) ~eval_cache base derived cview_list

(* A shard replica: same immutable data (base, materialized views, view
   set, policy, pool) and the same metrics registry, but private caches
   and a private lock.  Replicas therefore never contend on the hot
   path — that is the whole point of sharding — at the price of each
   shard warming its own plan/leaf/eval caches. *)
let replicate e =
  {
    e with
    leaf_cache = Hashtbl.create 64;
    eval_cache = Cq.Eval.make_cache ();
    plans = { by_render = Hashtbl.create 16; by_preds = Hashtbl.create 16 };
    lock = Mutex.create ();
  }

let database e = e.base
let derived_database e = e.derived
let program e = e.program

let derived_predicates e =
  match e.program with None -> [] | Some p -> Cq.Program.idb_preds p

let recursive_predicates e =
  match e.program with None -> [] | Some p -> Cq.Program.recursive_preds p

let citation_views e = e.cviews
let policy e = e.policy
let selection e = e.selection
let view_database e = e.view_db
let eval_cache e = e.eval_cache
let metrics e = e.metrics

(* [refresh] and [with_databases] change only the data, never the view
   set or rule set, so the plan cache (rewritings depend on views alone)
   and the eval cache (entries self-invalidate on relation identity) are
   kept; only the leaf cache — concrete citations computed from the
   data — must be dropped.  [refresh] re-derives the program's IDB
   extents before rematerializing the views over them. *)
let refresh e base =
  let derived, view_db =
    Metrics.with_sink e.metrics (fun () ->
        locked e (fun () ->
            let derived =
              match e.program with
              | None -> R.Database.empty
              | Some p ->
                  Metrics.record_time "derive" (fun () ->
                      derive ~cache:e.eval_cache base p)
            in
            let full = merge_full base derived in
            let view_db =
              Metrics.record_time "materialize" (fun () ->
                  materialize ~cache:e.eval_cache full e.cviews)
            in
            (derived, view_db)))
  in
  {
    e with
    base;
    derived;
    full = merge_full base derived;
    view_db;
    leaf_cache = Hashtbl.create 64;
  }

(* The caller asserts [view_db] matches [base]; derived extents are kept
   as-is.  {!Versioned_engine}'s registration guard refuses queries that
   read derived predicates, so maintained engines never observe them. *)
let with_databases e ~base ~view_db =
  {
    e with
    base;
    full = merge_full base e.derived;
    view_db;
    leaf_cache = Hashtbl.create 64;
  }

type tuple_citation = {
  tuple : R.Tuple.t;
  expr : Cite_expr.t;
  citations : Citation.Set.t;
}

type result = {
  query : Cq.Query.t;
  rewritings : Cq.Query.t list;
  selected : Cq.Query.t list;
  tuples : tuple_citation list;
  result_expr : Cite_expr.t;
  result_citations : Citation.Set.t;
  complete : bool;
  stats : Rw.Rewrite.stats;
}

(* Params are sorted by name so two leaves naming the same valuation in
   different construction orders share one cache entry (and one
   resolution). *)
let leaf_key (l : Cite_expr.leaf) =
  Printf.sprintf "%s(%s)" l.view
    (String.concat ","
       (List.map
          (fun (n, v) -> n ^ "=" ^ R.Value.to_string v)
          (List.sort (fun (a, _) (b, _) -> String.compare a b) l.params)))

let resolve_leaf e (l : Cite_expr.leaf) =
  Metrics.with_sink e.metrics @@ fun () ->
  locked e @@ fun () ->
  let k = leaf_key l in
  match Hashtbl.find_opt e.leaf_cache k with
  | Some c ->
      Metrics.record Metrics.Key.leaf_cache_hits;
      c
  | None ->
      Metrics.record Metrics.Key.leaf_cache_misses;
      let cv = Citation_view.Set.find_exn e.cviews l.view in
      let c = Citation_view.cite ~cache:e.eval_cache cv e.full l.params in
      Hashtbl.add e.leaf_cache k c;
      c

let select e rewritings =
  match (e.selection, rewritings) with
  | `All, _ | _, ([] | [ _ ]) -> rewritings
  | `Min_estimated_size, rs ->
      Option.to_list (Rw.Cost.choose_min_size e.full e.views rs)
  | `Min_exact_size, rs ->
      Option.to_list (Rw.Cost.choose_min_size ~exact:true e.full e.views rs)

(* Rewritings are evaluated over the materialized views merged with the
   base and derived relations: a partial rewriting's uncovered subgoals
   reference the base schema (or a recursive predicate's materialized
   extent) directly. *)
let eval_db e =
  List.fold_left R.Database.add_relation e.full
    (R.Database.relations e.view_db)

let merged_database = eval_db

(* A cheap, containment-free canonical rendering used as the plan
   cache's fast path: group body atoms by predicate (stable, so the
   reorder is independent of variable names only across alpha-renaming,
   not across arbitrary body permutations), then rename every variable
   to x<i> in order of first occurrence.  Alpha-renamed repeats of a
   query therefore render identically; any other equivalent form falls
   through to the core-equivalence scan below. *)
let canonical_render q =
  let body =
    List.stable_sort
      (fun a b -> String.compare (Cq.Atom.pred a) (Cq.Atom.pred b))
      (Cq.Query.body q)
  in
  let q = Cq.Query.make_exn ~name:"q" ~head:(Cq.Query.head q) ~body () in
  let subst =
    Cq.Subst.of_list
      (List.mapi
         (fun i v -> (v, Cq.Term.Var (Printf.sprintf "x%d" i)))
         (Cq.Query.all_vars q))
  in
  Cq.Query.to_string (Cq.Query.apply_subst subst q)

let pred_multiset q =
  String.concat ","
    (List.sort String.compare (List.map Cq.Atom.pred (Cq.Query.body q)))

(* The memoized rewriting search.  Equivalent queries (same answers on
   every database) have interchangeable rewriting sets, so a hit is
   keyed up to Chandra-Merlin equivalence: first the canonical
   rendering, then — because equivalent minimal queries are isomorphic,
   hence share their predicate multiset — an equivalence scan within
   the core's predicate-multiset bucket. *)
let plan_for e query =
  locked e @@ fun () ->
  let stripped = Cq.Query.strip_params query in
  let render = canonical_render stripped in
  match Hashtbl.find_opt e.plans.by_render render with
  | Some plan ->
      Metrics.record Metrics.Key.plan_cache_hits;
      plan
  | None -> (
      let minimized = Cq.Minimize.minimize stripped in
      let pkey = pred_multiset minimized in
      let bucket =
        match Hashtbl.find_opt e.plans.by_preds pkey with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.add e.plans.by_preds pkey b;
            b
      in
      match
        List.find_opt
          (fun p -> Cq.Containment.equivalent p.canonical minimized)
          !bucket
      with
      | Some plan ->
          Metrics.record Metrics.Key.plan_cache_hits;
          Hashtbl.replace e.plans.by_render render plan;
          plan
      | None ->
          Metrics.record Metrics.Key.plan_cache_misses;
          let { Rw.Rewrite.queries = rewritings; stats } =
            Metrics.record_time "rewrite" (fun () ->
                Rw.Rewrite.search ~partial:e.partial ?pool:e.pool e.views
                  stripped)
          in
          let plan =
            {
              canonical = minimized;
              plan_rewritings = rewritings;
              plan_stats = stats;
              plan_contained = None;
            }
          in
          bucket := plan :: !bucket;
          Hashtbl.replace e.plans.by_render render plan;
          plan)

let contained_for e plan query =
  locked e @@ fun () ->
  match plan.plan_contained with
  | Some r -> r
  | None ->
      let r =
        Metrics.record_time "rewrite" (fun () ->
            Rw.Rewrite.maximally_contained e.views query)
      in
      plan.plan_contained <- Some r;
      r

let cite e query =
  Metrics.with_sink e.metrics @@ fun () ->
  let plan = plan_for e query in
  let rewritings = plan.plan_rewritings and stats = plan.plan_stats in
  let selected = select e rewritings in
  Log.debug (fun m ->
      m "cite %s: %d candidates, %d rewritings, %d selected"
        (Cq.Query.name query) stats.candidates (List.length rewritings)
        (List.length selected));
  let db = eval_db e in
  (* An uncovered query still gets its answer — with no citation by
     default, or best-effort through the maximally contained rewriting
     when the engine was created with [fallback_contained]. *)
  let selected_or_self, complete =
    if selected <> [] then (selected, true)
    else if e.fallback_contained then
      match contained_for e plan query with
      | [], _ -> ([ Cq.Query.strip_params query ], true)
      | disjuncts, _ -> (disjuncts, false)
    else ([ Cq.Query.strip_params query ], true)
  in
  let per_tuple =
    Metrics.record_time "eval" @@ fun () ->
    (* the shared eval cache (index memoization) is mutated during the
       run, so the evaluation itself is the critical section *)
    locked e @@ fun () ->
    List.fold_left
      (fun m rw ->
        List.fold_left
          (fun m (tuple, bindings) ->
            let existing =
              Option.value ~default:[] (R.Tuple.Map.find_opt tuple m)
            in
            R.Tuple.Map.add tuple ((rw, bindings) :: existing) m)
          m
          (Cq.Eval.run ~cache:e.eval_cache db rw))
      R.Tuple.Map.empty selected_or_self
  in
  let resolve = resolve_leaf e in
  let tuples =
    R.Tuple.Map.bindings per_tuple
    |> List.map (fun (tuple, contribs) ->
           let expr =
             Cite_expr.normalize (Compute.tuple_expr e.cviews (List.rev contribs))
           in
           let citations = Policy.eval ~resolve e.policy expr in
           { tuple; expr; citations })
  in
  let result_expr =
    Cite_expr.normalize
      (Compute.result_expr (List.map (fun t -> t.expr) tuples))
  in
  let result_citations = Policy.eval ~resolve e.policy result_expr in
  {
    query;
    rewritings;
    selected;
    tuples;
    result_expr;
    result_citations;
    complete;
    stats;
  }

let cite_string e src =
  Result.map (cite e) (Cq.Parser.parse_query src)

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "@[<v>query     : %s@,rewritings: %d@,selected  : [%s]@,tuples    : \
     %d@,citations : %d@,complete  : %b@,stats     : %a@]"
    (Cq.Query.to_string r.query)
    (List.length r.rewritings)
    (String.concat "; " (List.map Cq.Query.name r.selected))
    (List.length r.tuples)
    (List.length r.result_citations)
    r.complete Rw.Rewrite.pp_stats r.stats

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let result_to_json (r : result) =
  let jstr s = Printf.sprintf "\"%s\"" (json_escape s) in
  let names qs = String.concat "," (List.map (fun q -> jstr (Cq.Query.name q)) qs) in
  Printf.sprintf
    "{\"query\":%s,\"rewritings\":[%s],\"selected\":[%s],\"tuples\":%d,\"expr\":%s,\"citations\":%s,\"complete\":%b,\"stats\":%s}"
    (jstr (Cq.Query.to_string r.query))
    (names r.rewritings) (names r.selected)
    (List.length r.tuples)
    (jstr (Cite_expr.to_string r.result_expr))
    (Fmt_citation.render Fmt_citation.Json r.result_citations)
    r.complete
    (Rw.Rewrite.stats_to_json r.stats)
