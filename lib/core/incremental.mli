(** Incremental citation maintenance — the paper's "citation evolution"
    challenge (§3): "how to compute citations in an incremental manner".

    A {e registration} pins a query together with its selected
    rewritings and caches the per-tuple formal citations.  When the base
    database changes by a {!Dc_relational.Delta.t}, the registration is
    updated by delta evaluation instead of recomputation:

    + each view's extent delta is computed by evaluating the view with
      one body atom pinned to each changed base tuple (standard delta
      rules, one pass per occurrence);
    + the affected output tuples of each rewriting are those produced by
      bindings that touch a changed view tuple;
    + only the affected tuples have their binding sets — and hence their
      citation expressions — recomputed; every other cached citation is
      reused.

    Experiment E6 measures this against [Engine.refresh] + re-cite. *)

type t

val register : Engine.t -> Dc_cq.Query.t -> t
(** Evaluates once and caches. *)

val engine : t -> Engine.t
val query : t -> Dc_cq.Query.t
val selected : t -> Dc_cq.Query.t list

val tuples : t -> Engine.tuple_citation list
(** Current cached per-tuple citations, sorted by tuple. *)

val result_expr : t -> Cite_expr.t
val result_citations : t -> Citation.Set.t

val to_result : t -> Engine.result
(** The registration's current state packaged as an {!Engine.result}:
    the cached per-tuple citations, the aggregated result expression
    and its policy evaluation.  [rewritings] and [selected] both carry
    the registered rewritings, [stats] is zeroed except [kept] (no
    enumeration ran), [complete] is [true].  {!Versioned_engine} serves
    registered head-version queries from this instead of re-citing. *)

val apply_delta : ?new_base:Dc_relational.Database.t -> t -> Dc_relational.Delta.t -> t
(** Updates the base database, the materialized views, and the affected
    citations.  Raises [Not_found] when the delta touches a relation
    absent from the database.

    [new_base], when given, must be exactly the database the delta
    produces ({!Dc_relational.Version_store.apply_head} computes it);
    the registration then shares that value instead of re-applying the
    delta, keeping store head and registration base physically in
    step. *)

val affected_last : t -> int
(** Number of output tuples recomputed by the last [apply_delta]
    (0 for a fresh registration); exposed for tests and benchmarks. *)
