(** A citation engine over {e every} committed version of a database —
    the paper's §3 fixity requirement made operational.

    The paper requires that a citation "bring back the data as seen at
    the time it was cited".  This layer owns a
    {!Dc_relational.Version_store.t} plus one {!Engine.t} per
    checked-out version: {!cite_at} cites against any committed
    version, and every result is stamped with the version, its commit
    timestamp and a {!Fixity} content digest, so a reader can later
    {!verify} that the cited version still hashes to what the citation
    recorded.

    {b Versions and commits.}  Version [0] is the database the engine
    was created over.  {!commit_delta} applies a
    {!Dc_relational.Delta.t} to the head through
    {!Dc_relational.Version_store.apply_head} — the single
    delta-application path — and commits the result as a new head;
    every older version stays citable forever.  Incremental
    registrations ({!register}) are re-maintained on each commit from
    the {e same} database value the store commits, so the store head
    and the registrations can never diverge.

    {b Engine cache.}  Per-version engines are materialized lazily on
    first use and kept in an LRU cache bounded by [capacity] (default
    4).  The head version's engine is never evicted.  All per-version
    engines share one metrics registry (this engine's), so cache
    counters aggregate across versions; digests are cached without
    bound (they are 32-byte strings).

    {b Thread safety.}  All operations are safe from any thread or
    domain.  Commits and registrations serialize among themselves, but
    nothing slow ever runs under the lock that {!cite_at} takes, so
    in-flight citations — on the head or on historical versions —
    proceed concurrently with a commit. *)

type t

type cited = {
  version : Dc_relational.Version_store.version;
  timestamp : int option;  (** the version's commit time *)
  digest : string;  (** {!Fixity.digest_db} of the cited version *)
  result : Engine.result;
  from_registration : bool;
      (** served from an incremental {!register}ation rather than by a
          fresh engine evaluation *)
}

val create :
  ?policy:Policy.t ->
  ?selection:Engine.selection ->
  ?partial:bool ->
  ?fallback_contained:bool ->
  ?pool:Dc_parallel.Domain_pool.t ->
  ?capacity:int ->
  ?metrics:Metrics.t ->
  Dc_relational.Database.t ->
  Citation_view.t list ->
  t
(** The given database becomes version 0.  Engine parameters are as
    {!Engine.create} and apply to every per-version engine; [capacity]
    (default 4, minimum 1) bounds the LRU engine cache. *)

val create_program :
  ?policy:Policy.t ->
  ?selection:Engine.selection ->
  ?partial:bool ->
  ?fallback_contained:bool ->
  ?pool:Dc_parallel.Domain_pool.t ->
  ?capacity:int ->
  ?metrics:Metrics.t ->
  ?views:Citation_view.t list ->
  Dc_relational.Database.t ->
  Dc_cq.Program.t ->
  t
(** {!create} over a Datalog program (see {!Engine.of_program}): the
    EDB database becomes version 0; every per-version engine re-derives
    the program's IDB extents for its version's EDB state.  Deltas and
    the version store remain EDB-only — committing a delta that names
    an IDB predicate fails like any unknown relation. *)

val of_engine :
  ?capacity:int -> ?store:Dc_relational.Version_store.t -> Engine.t -> t
(** Wrap an existing engine as version 0 of a fresh store.  The
    engine's database, views, policy, selection and metrics registry
    carry over to every per-version engine.  When [store] is given
    (crash recovery), the versioned engine serves {e that} store
    instead — per-version engines, including the recovered head's, are
    materialized lazily from the given engine's template. *)

val set_durability : t -> Dc_storage.Store.t -> unit
(** Arm durable backing: every subsequent {!commit_delta} appends to
    the store's WAL {e before} the new head is published (an append
    failure fails the commit), and every {!register} is logged.  Set
    once at startup, before serving. *)

val rearm : t -> Dc_cq.Query.t -> (unit, string) result
(** {!register} minus the WAL append — recovery re-arms queries the
    log already contains without duplicating them. *)

val head : t -> Dc_relational.Version_store.version
val versions : t -> Dc_relational.Version_store.version list

val timestamp : t -> Dc_relational.Version_store.version -> int option

val store : t -> Dc_relational.Version_store.t
(** A snapshot of the underlying store (persistent, so safe to keep). *)

val metrics : t -> Metrics.t
(** The shared registry: engine counters from every version plus
    [version_commits], [version_cache_hits/misses/evictions] and
    [registrations_maintained]. *)

val capacity : t -> int

val cached_versions : t -> Dc_relational.Version_store.version list
(** Versions with a currently materialized engine, MRU first (exposed
    for tests of the LRU bound). *)

val registrations : t -> string list
(** Rendered queries currently registered for incremental maintenance. *)

val engine_at :
  t -> Dc_relational.Version_store.version -> (Engine.t, string) result
(** The (lazily materialized, LRU-cached) engine for a version.
    [Error] when the version was never committed. *)

val cite_at :
  t -> Dc_relational.Version_store.version -> Dc_cq.Query.t ->
  (cited, string) result
(** Cite against a specific version.  Citing the head of a registered
    query is served from the maintained registration
    ([from_registration = true]) without re-evaluating.  [Error] only
    for an unknown version — never an exception. *)

val cite : t -> Dc_cq.Query.t -> (cited, string) result
(** [cite t q] is [cite_at t (head t) q]. *)

val cite_string : t -> string -> (Engine.result, string) Stdlib.result
(** Parse and cite at head, dropping the stamp — the {!Citer}-shaped
    entry point. *)

val template : t -> Engine.t
(** The pristine template replica per-version engines are refreshed
    from; exposes creation-time configuration (program, views, policy)
    without materializing a version. *)

val register : t -> Dc_cq.Query.t -> (unit, string) result
(** Register the query for incremental maintenance at head: subsequent
    {!commit_delta}s update its cached citations by delta rules, and
    head-version {!cite_at}s of the same query are served from the
    registration.

    {b Derived-predicate guard.}  [Error] — registration refused, no
    state changed — when the query, a selected rewriting, or the
    definition of a citation view those use reads a predicate derived
    by the engine's Datalog program.  Deltas name base relations only,
    so such a registration could not be maintained and would go stale
    silently; recursive predicates would additionally need per-delta
    fixpoint re-iteration.  Cite after each commit instead (per-version
    engines re-derive IDB extents). *)

val commit_delta : t -> Dc_relational.Delta.t -> (Dc_relational.Version_store.version, string) result
(** Apply a delta to the head and commit the result as the new head,
    returning the new version.  Registrations are re-maintained from
    the same database value the store commits.  [Error] (never an
    exception) when the delta touches an unknown relation or
    mismatches a schema. *)

val verify :
  t -> Dc_relational.Version_store.version -> string -> (bool, string) result
(** Does the version's content digest equal the given digest?  [Error]
    for an unknown version. *)

val digest_at :
  t -> Dc_relational.Version_store.version -> (string, string) result
(** The version's {!Fixity.digest_db}, cached after first computation. *)

val pp : Format.formatter -> t -> unit
