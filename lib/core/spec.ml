module R = Dc_relational
module Cq = Dc_cq

let strip_comments src =
  String.split_on_char '\n' src
  |> List.map (fun line ->
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line)
  |> String.concat "\n"

let parse_views src =
  let statements =
    strip_comments src |> String.split_on_char ';'
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse_stmt s =
    let keyword, rest =
      match String.index_opt s ' ' with
      | None -> (s, "")
      | Some i ->
          (String.sub s 0 i, String.sub s i (String.length s - i))
    in
    match String.lowercase_ascii keyword with
    | "view" -> Result.map (fun q -> `View q) (Cq.Parser.parse_query rest)
    | "cite" -> Result.map (fun q -> `Cite q) (Cq.Parser.parse_query rest)
    | k -> Error (Printf.sprintf "expected 'view' or 'cite', got %S" k)
  in
  let rec assemble acc current = function
    | [] -> (
        match current with
        | None -> Ok (List.rev acc)
        | Some (v, cites) -> (
            match Citation_view.make ~view:v ~citations:(List.rev cites) () with
            | Ok cv -> Ok (List.rev (cv :: acc))
            | Error e -> Error e))
    | `View q :: rest -> (
        match current with
        | None -> assemble acc (Some (q, [])) rest
        | Some (v, cites) -> (
            match Citation_view.make ~view:v ~citations:(List.rev cites) () with
            | Ok cv -> assemble (cv :: acc) (Some (q, [])) rest
            | Error e -> Error e))
    | `Cite q :: rest -> (
        match current with
        | None ->
            Error
              (Printf.sprintf "cite %s appears before any view"
                 (Cq.Query.name q))
        | Some (v, cites) -> assemble acc (Some (v, q :: cites)) rest)
  in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match parse_stmt s with
        | Ok stmt -> parse_all (stmt :: acc) rest
        | Error e -> Error e)
  in
  Result.bind (parse_all [] statements) (fun stmts -> assemble [] None stmts)

let parse_schema_line line =
  let line = String.trim line in
  match String.index_opt line '(' with
  | None -> Error (Printf.sprintf "schema line %S: expected '('" line)
  | Some i ->
      let name = String.trim (String.sub line 0 i) in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      let rest =
        match String.rindex_opt rest ')' with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      let cols = String.split_on_char ',' rest |> List.map String.trim in
      let parse_col c =
        let is_key = String.length c > 0 && c.[String.length c - 1] = '*' in
        let c = if is_key then String.sub c 0 (String.length c - 1) else c in
        match String.split_on_char ':' c with
        | [ col; ty ] -> (
            match R.Value.ty_of_string (String.trim ty) with
            | Ok ty -> Ok (String.trim col, ty, is_key)
            | Error e -> Error e)
        | [ col ] -> Ok (String.trim col, R.Value.TAny, is_key)
        | _ -> Error (Printf.sprintf "bad column spec %S" c)
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> (
            match parse_col c with
            | Ok col -> go (col :: acc) rest
            | Error e -> Error e)
      in
      Result.map
        (fun cols ->
          let attrs =
            List.map (fun (n, ty, _) -> R.Schema.attr ~ty n) cols
          in
          let key =
            List.filter_map (fun (n, _, k) -> if k then Some n else None) cols
          in
          R.Schema.make name ~key attrs)
        (go [] cols)

let parse_schemas src =
  let lines =
    strip_comments src |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_schema_line l with
        | Ok s -> go (s :: acc) rest
        | Error e -> Error e)
  in
  go [] lines

let load_database ~dir =
  let schema_path = Filename.concat dir "schema.spec" in
  if not (Sys.file_exists schema_path) then
    Error (Printf.sprintf "no schema.spec in %s" dir)
  else
    match
      Result.bind (R.Csv_io.read_file schema_path) (fun src ->
          Result.map_error
            (fun e -> Printf.sprintf "%s: %s" schema_path e)
            (parse_schemas src))
    with
    | Error e -> Error e
    | Ok schemas ->
        let rec load db = function
          | [] -> Ok db
          | schema :: rest -> (
              let csv = Filename.concat dir (R.Schema.name schema ^ ".csv") in
              if Sys.file_exists csv then
                match R.Csv_io.load_relation schema csv with
                | Ok rel -> load (R.Database.add_relation db rel) rest
                | Error e ->
                    Error (Printf.sprintf "%s: %s" (R.Schema.name schema) e)
              else load (R.Database.create_relation db schema) rest)
        in
        load R.Database.empty schemas

let render_schemas schemas =
  let render_schema s =
    let cols =
      List.map
        (fun (a : R.Schema.attribute) ->
          Printf.sprintf "%s:%s%s" a.name
            (R.Value.ty_to_string a.ty)
            (if List.mem a.name (R.Schema.key s) then "*" else ""))
        (R.Schema.attributes s)
    in
    Printf.sprintf "%s(%s)" (R.Schema.name s) (String.concat ", " cols)
  in
  String.concat "\n" (List.map render_schema schemas) ^ "\n"

let save_database db ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let schemas = List.map R.Relation.schema (R.Database.relations db) in
  let oc = open_out (Filename.concat dir "schema.spec") in
  output_string oc (render_schemas schemas);
  close_out oc;
  List.iter
    (fun rel ->
      R.Csv_io.save_relation rel
        (Filename.concat dir (R.Relation.name rel ^ ".csv")))
    (R.Database.relations db)
