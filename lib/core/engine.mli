(** End-to-end citation engine: query in, citations out.

    The pipeline is the paper's §2 with the §3 "calculating citations"
    cost shortcut:

    + rewrite the (parameter-stripped) query into its minimal
      equivalent rewritings over the citation views (MiniCon + verify);
    + optionally {e select} rewritings before any evaluation — with
      [selection = `Min_estimated_size] only the rewriting with the
      smallest estimated citation is evaluated, so the engine never
      enumerates "all rewritings and all assignments within each";
    + evaluate the selected rewritings over the materialized views,
      collecting all bindings per output tuple;
    + build per-tuple formal expressions (Definitions 2.1/2.2), the
      result-level [Agg], and their policy-evaluated concrete citation
      sets; leaf citations are memoized per (view, valuation).

    {b Thread safety: the shard-vs-mutex model.}  Concurrency safety
    and parallel speedup are provided by two different mechanisms:

    - {e mutex} — one engine may serve {!cite} / {!cite_string} /
      {!resolve_leaf} calls from any number of threads {e or domains}
      concurrently: the shared mutable caches — rewriting plans, leaf
      citations, and the evaluation index cache — are guarded by an
      internal mutex.  This is correct under systhreads and under
      domains alike, but the lock serializes the cache-touching hot
      path, so it adds safety, not parallelism.  Each acquisition that
      finds the lock already held bumps
      {!Metrics.Key.engine_lock_waits}, making the contention that
      sharding is supposed to remove directly measurable.  Metric
      recording itself never takes a shared lock: {!Metrics} keeps
      per-domain sinks, so counters are not a second contention point.
    - {e shards} — {!replicate} returns a replica sharing the immutable
      data (base database, materialized views, view set, policy) and
      the metrics registry, but owning {e private} caches and a private
      lock.  Give each domain its own replica ({!Sharded_engine} does)
      and the hot path never contends: parallel speedup comes from
      sharding, the per-engine mutex remains only for intra-shard
      concurrency (e.g. the systhread server path).

    {!refresh} and {!with_databases} return copies sharing caches {e and
    the mutex}, so the copies are safe too; swapping which engine a
    server uses is the caller's (atomic-reference) problem.  The
    contract covers only access {e through} the engine: code that takes
    the raw {!eval_cache} handle and evaluates with it directly
    ({!Incremental} does) bypasses the lock and must not run
    concurrently with citations on the same engine. *)

type selection =
  [ `All  (** evaluate every minimal rewriting; [+R] applies at eval *)
  | `Min_estimated_size
    (** pre-select by {!Dc_rewriting.Cost.citation_size} estimate *)
  | `Min_exact_size  (** pre-select by exact per-view citation counts *) ]

type t

val create :
  ?policy:Policy.t ->
  ?selection:selection ->
  ?partial:bool ->
  ?fallback_contained:bool ->
  ?pool:Dc_parallel.Domain_pool.t ->
  ?metrics:Metrics.t ->
  Dc_relational.Database.t ->
  Citation_view.t list ->
  t
(** Materializes every view once.  Defaults: the paper's policy
    ({!Policy.default}), [`Min_estimated_size] selection, no partial
    rewritings.  With [fallback_contained], a query with no equivalent
    rewriting is answered {e best-effort} through its maximally
    contained rewriting: the tuples are then possibly a strict subset
    of the true answer ([result.complete = false]) but each carries a
    citation.  With [pool], plan-cache misses verify rewriting
    candidates in parallel across the pool's domains (results are
    identical to the sequential search).  With [metrics], the engine
    records into the given registry instead of a fresh private one —
    {!Versioned_engine} uses this to aggregate all its per-version
    engines into one registry. *)

val of_program :
  ?policy:Policy.t ->
  ?selection:selection ->
  ?partial:bool ->
  ?fallback_contained:bool ->
  ?pool:Dc_parallel.Domain_pool.t ->
  ?metrics:Metrics.t ->
  ?views:Citation_view.t list ->
  Dc_relational.Database.t ->
  Dc_cq.Program.t ->
  t
(** An engine over a Datalog program: the one door through which rules,
    views and citation queries all enter.  The program's IDB predicates
    are materialized with {!Dc_cq.Seminaive} (stratified, semi-naive)
    into a {e derived} store kept beside the base database; its exports
    become citation views, with non-recursive IDB predicates unfolded
    into the view bodies ({!Dc_cq.Program.unfold_exports}) so rewriting
    sees through them, and recursive predicates left as atoms over
    their materialized extents — treated exactly like base relations by
    the rewriting search.  [views] appends hand-built citation views
    (e.g. ones needing a [post] hook) on top of the program's exports.

    Raises [Invalid_argument] on IDB/base name collisions, malformed
    exports, or schema mismatches. *)

val replicate : t -> t
(** A shard replica: shares the immutable data (base database,
    materialized views — nothing is rematerialized), the policy, the
    metrics registry and the domain pool, but owns fresh private
    plan/leaf/eval caches and a fresh lock.  See the thread-safety note
    above; {!Sharded_engine} builds on this. *)

val database : t -> Dc_relational.Database.t
(** The base (EDB) database only — what {!refresh}, the version store
    and the WAL operate on; derived extents are recomputed, never
    stored or shipped. *)

val derived_database : t -> Dc_relational.Database.t
(** The materialized IDB extents of the engine's program; empty for
    engines built with {!create}. *)

val program : t -> Dc_cq.Program.t option

val derived_predicates : t -> string list
(** IDB predicate names of the program, stratum order; [[]] without a
    program. *)

val recursive_predicates : t -> string list
(** The subset of {!derived_predicates} computed by fixpoint iteration.
    Registering incremental maintenance over these is refused — see
    {!Versioned_engine.register}. *)

val citation_views : t -> Citation_view.Set.t
val policy : t -> Policy.t

val selection : t -> selection
(** The rewriting-selection mode this engine was created with (exposed
    so wrappers like {!Versioned_engine} can build per-version engines
    with identical behaviour). *)

val view_database : t -> Dc_relational.Database.t

val eval_cache : t -> Dc_cq.Eval.cache
(** The engine's shared evaluation cache: hash indexes keyed by
    (predicate, bound positions) {e and} compiled query plans keyed by
    the query's printed form (see {!Dc_cq.Plan}).  Both kinds of entry
    self-invalidate against the current relation values by physical
    identity, so callers maintaining the database incrementally
    ({!Incremental}) can keep reusing it across deltas.  Distinct from
    the engine's rewriting-plan cache, which maps citation queries to
    verified rewritings and is keyed by canonicalized query form. *)

val metrics : t -> Metrics.t
(** This engine's metrics handle: plan/leaf/eval cache hit counters,
    rewriting enumeration counters and wall-clock timers for work done
    through this engine.  {!Metrics.default} aggregates across all
    engines. *)

val merged_database : t -> Dc_relational.Database.t
(** Base relations and materialized views in one database — what
    rewritings (including partial ones) are evaluated against. *)

val refresh : t -> Dc_relational.Database.t -> t
(** The same engine over an updated database (views rematerialized).
    The rewriting-plan cache is kept: plans depend only on the view
    set, which [refresh] never changes.  Only {!create} — where the
    view set is chosen — starts with a cold plan cache. *)

val with_databases :
  t -> base:Dc_relational.Database.t -> view_db:Dc_relational.Database.t -> t
(** Replaces both stores without rematerializing; the caller asserts
    that [view_db] is the correct materialization of the views over
    [base].  {!Incremental} maintains the extents itself and uses this
    to avoid the full rematerialization [refresh] performs.  The leaf
    cache is cleared; the plan cache (views unchanged) is kept warm. *)

type tuple_citation = {
  tuple : Dc_relational.Tuple.t;
  expr : Cite_expr.t;  (** formal citation, Definitions 2.1/2.2 + [+R] *)
  citations : Citation.Set.t;  (** policy-evaluated concrete citations *)
}

type result = {
  query : Dc_cq.Query.t;
  rewritings : Dc_cq.Query.t list;  (** all minimal equivalent rewritings *)
  selected : Dc_cq.Query.t list;  (** the ones actually evaluated *)
  tuples : tuple_citation list;
      (** the query answer; when the query has no rewriting over the
          views it is evaluated directly and every tuple carries a
          leafless expression and an empty citation set *)
  result_expr : Cite_expr.t;  (** [Agg] over the tuples *)
  result_citations : Citation.Set.t;
  complete : bool;
      (** [false] only when the contained-rewriting fallback answered a
          query that has no equivalent rewriting: the tuples may then
          under-approximate the true answer *)
  stats : Dc_rewriting.Rewrite.stats;
}

val pp_result : Format.formatter -> result -> unit
(** A compact human-readable summary of a result: query, rewriting and
    selection counts, tuple and citation counts, completeness and the
    enumeration stats.  One field per line. *)

val result_to_json : result -> string
(** One-line JSON object over the labeled fields: query text, rewriting
    and selected names, tuple count, the normalized result expression,
    the concrete citations ({!Fmt_citation} JSON), completeness and
    {!Dc_rewriting.Rewrite.stats_to_json} stats. *)

val cite : t -> Dc_cq.Query.t -> result

val cite_string : t -> string -> (result, string) Stdlib.result
(** Parses with {!Dc_cq.Parser.parse_query} first. *)

val resolve_leaf : t -> Cite_expr.leaf -> Citation.t
(** The engine's memoized leaf resolver (exposed for tests and for
    rendering formal expressions independently of [cite]). *)
