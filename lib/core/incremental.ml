module R = Dc_relational
module Cq = Dc_cq

let log_src =
  Logs.Src.create "datacite.incremental" ~doc:"Incremental citation maintenance"

module Log = (val Logs.src_log log_src)

type t = {
  engine : Engine.t;
  query : Cq.Query.t;
  selected : Cq.Query.t list;
  cache : Engine.tuple_citation R.Tuple.Map.t;
  affected_last : int;
}

let engine reg = reg.engine
let query reg = reg.query
let selected reg = reg.selected
let tuples reg = List.map snd (R.Tuple.Map.bindings reg.cache)
let affected_last reg = reg.affected_last

let result_expr reg =
  Cite_expr.normalize
    (Compute.result_expr
       (List.map (fun (tc : Engine.tuple_citation) -> tc.expr) (tuples reg)))

let result_citations reg =
  Policy.eval
    ~resolve:(Engine.resolve_leaf reg.engine)
    (Engine.policy reg.engine) (result_expr reg)

let to_result reg : Engine.result =
  let tuples = tuples reg in
  let result_expr = result_expr reg in
  let result_citations = result_citations reg in
  {
    Engine.query = reg.query;
    rewritings = reg.selected;
    selected = reg.selected;
    tuples;
    result_expr;
    result_citations;
    complete = true;
    stats =
      {
        Dc_rewriting.Rewrite.candidates = 0;
        verified = 0;
        kept = List.length reg.selected;
        truncated = false;
      };
  }

let register eng q =
  let result = Engine.cite eng q in
  let cache =
    List.fold_left
      (fun m (tc : Engine.tuple_citation) -> R.Tuple.Map.add tc.tuple tc m)
      R.Tuple.Map.empty result.tuples
  in
  (* For an uncovered query the engine evaluated the query itself; track
     it so deltas on its base relations still propagate. *)
  let selected =
    if result.selected = [] then [ Cq.Query.strip_params q ]
    else result.selected
  in
  { engine = eng; query = q; selected; cache; affected_last = 0 }

(* Specialize a query by pinning one body-atom occurrence to a concrete
   tuple: substitute the atom's variables with the tuple's values.
   [None] when a constant in the atom disagrees with the tuple. *)
let pin_occurrence q atom_index tuple =
  let body = Cq.Query.body q in
  let atom = List.nth body atom_index in
  let rec build subst args i =
    match args with
    | [] -> Some subst
    | Cq.Term.Const c :: rest ->
        if R.Value.equal c (R.Tuple.get tuple i) then build subst rest (i + 1)
        else None
    | Cq.Term.Var v :: rest -> (
        let value = R.Tuple.get tuple i in
        match Cq.Subst.extend subst v (Cq.Term.Const value) with
        | Some subst -> build subst rest (i + 1)
        | None -> None)
  in
  if List.length (Cq.Atom.args atom) <> R.Tuple.arity tuple then None
  else
    Option.map
      (fun s -> Cq.Query.apply_subst s q)
      (build Cq.Subst.empty (Cq.Atom.args atom) 0)

(* Delta rule: the head tuples derivable through [tuple] sitting in the
   [pred] position of [q]'s body, evaluated against [db].  One pass per
   occurrence of [pred]. *)
let derived_through ?cache db q pred tuple =
  List.concat
    (List.mapi
       (fun i atom ->
         if String.equal (Cq.Atom.pred atom) pred then
           match pin_occurrence q i tuple with
           | None -> []
           | Some q' -> List.map fst (Cq.Eval.run ?cache db q')
         else [])
       (Cq.Query.body q))

(* Pin the head of [q] to a concrete output tuple, yielding the
   specialized query whose answers are exactly the bindings behind that
   tuple.  [None] when a head constant disagrees with the tuple. *)
let pin_head q head_tuple =
  let rec build subst terms i =
    match terms with
    | [] -> Some subst
    | Cq.Term.Const c :: rest ->
        if R.Value.equal c (R.Tuple.get head_tuple i) then
          build subst rest (i + 1)
        else None
    | Cq.Term.Var v :: rest -> (
        match
          Cq.Subst.extend subst v (Cq.Term.Const (R.Tuple.get head_tuple i))
        with
        | Some subst -> build subst rest (i + 1)
        | None -> None)
  in
  Option.map
    (fun s -> Cq.Query.apply_subst s q)
    (build Cq.Subst.empty (Cq.Query.head q) 0)

let apply_delta ?new_base reg delta =
  (* Reuse the engine's index cache rather than building a throwaway
     one per delta: entries are validated against the current relation
     value inside [Eval.index_for], so indexes over unchanged relations
     survive across deltas and stale ones rebuild transparently. *)
  let eval_cache = Engine.eval_cache reg.engine in
  let old_base = Engine.database reg.engine in
  (* [new_base], when given, lets a caller that already applied the
     delta (Version_store.apply_head is THE delta-application path)
     share the exact database value instead of re-deriving it. *)
  let new_base =
    match new_base with
    | Some db -> db
    | None -> R.Delta.apply old_base delta
  in
  let old_view_db = Engine.view_database reg.engine in
  let cviews = Engine.citation_views reg.engine in
  let changed_base = R.Delta.relations_touched delta in
  (* 1. View-extent deltas by delta rules + rederivation check. *)
  let view_changes =
    List.filter_map
      (fun cv ->
        let def = Citation_view.definition cv in
        let touches =
          List.exists (fun p -> List.mem p changed_base) (Cq.Query.predicates def)
        in
        if not touches then None
        else
          let name = Citation_view.name cv in
          let old_extent = R.Database.relation_exn old_view_db name in
          let inserts =
            List.concat_map
              (fun rel ->
                List.concat_map
                  (fun tuple -> derived_through ~cache:eval_cache new_base def rel tuple)
                  (R.Delta.inserted delta rel))
              changed_base
            |> List.filter (fun t -> not (R.Relation.mem old_extent t))
            |> List.sort_uniq R.Tuple.compare
          in
          let delete_candidates =
            List.concat_map
              (fun rel ->
                List.concat_map
                  (fun tuple -> derived_through ~cache:eval_cache old_base def rel tuple)
                  (R.Delta.deleted delta rel))
              changed_base
            |> List.sort_uniq R.Tuple.compare
          in
          let deletes =
            List.filter
              (fun t ->
                match pin_head def t with
                | None -> true
                | Some q' -> not (Cq.Eval.holds ~cache:eval_cache new_base q'))
              delete_candidates
          in
          if inserts = [] && deletes = [] then None
          else Some (name, inserts, deletes))
      (Citation_view.Set.to_list cviews)
  in
  (* 2. Apply view deltas to the materialized view database. *)
  let new_view_db =
    List.fold_left
      (fun db (name, inserts, deletes) ->
        let rel = R.Database.relation_exn db name in
        let rel = List.fold_left R.Relation.delete rel deletes in
        let rel = R.Relation.insert_list rel inserts in
        R.Database.add_relation db rel)
      old_view_db view_changes
  in
  let new_engine =
    Engine.with_databases reg.engine ~base:new_base ~view_db:new_view_db
  in
  let merge base view_db =
    List.fold_left R.Database.add_relation base (R.Database.relations view_db)
  in
  let merged_old = merge old_base old_view_db in
  let merged_new = merge new_base new_view_db in
  (* 3. Affected output tuples of the registered rewritings: through
     changed view tuples, and — for partial rewritings — through changed
     base tuples referenced directly. *)
  let affected =
    List.concat_map
      (fun rw ->
        let via_views =
          List.concat_map
            (fun (vname, inserts, deletes) ->
              List.concat_map
                (fun t -> derived_through ~cache:eval_cache merged_new rw vname t)
                inserts
              @ List.concat_map
                  (fun t -> derived_through ~cache:eval_cache merged_old rw vname t)
                  deletes)
            view_changes
        in
        let via_base =
          List.concat_map
            (fun rel ->
              if List.mem rel (Cq.Query.predicates rw) then
                List.concat_map
                  (fun t -> derived_through ~cache:eval_cache merged_new rw rel t)
                  (R.Delta.inserted delta rel)
                @ List.concat_map
                    (fun t -> derived_through ~cache:eval_cache merged_old rw rel t)
                    (R.Delta.deleted delta rel)
              else [])
            changed_base
        in
        via_views @ via_base)
      reg.selected
    |> List.sort_uniq R.Tuple.compare
  in
  (* 4. Recompute bindings and expressions for affected tuples only. *)
  let resolve = Engine.resolve_leaf new_engine in
  let policy = Engine.policy new_engine in
  let cache =
    List.fold_left
      (fun cache tuple ->
        let contribs =
          List.filter_map
            (fun rw ->
              match pin_head rw tuple with
              | None -> None
              | Some rw' ->
                  let bindings = Cq.Eval.bindings ~cache:eval_cache merged_new rw' in
                  if bindings = [] then None else Some (rw', bindings))
            reg.selected
        in
        if contribs = [] then R.Tuple.Map.remove tuple cache
        else
          let expr =
            Cite_expr.normalize
              (Cite_expr.alt_r
                 (List.map
                    (fun (rw', bindings) ->
                      Cite_expr.alt
                        (List.map (Compute.binding_expr cviews rw') bindings))
                    contribs))
          in
          let citations = Policy.eval ~resolve policy expr in
          R.Tuple.Map.add tuple { Engine.tuple; expr; citations } cache)
      reg.cache affected
  in
  (* 5. Citation-query dirtiness: snippets live in the base database, so
     a delta touching a citation query's relations stales the concrete
     citations (not the formal expressions) of every tuple whose
     expression mentions that view. *)
  let dirty_views =
    List.filter_map
      (fun cv ->
        let dirty =
          List.exists
            (fun cq ->
              List.exists
                (fun p -> List.mem p changed_base)
                (Cq.Query.predicates cq))
            (Citation_view.citation_queries cv)
        in
        if dirty then Some (Citation_view.name cv) else None)
      (Citation_view.Set.to_list cviews)
  in
  let cache =
    if dirty_views = [] then cache
    else
      R.Tuple.Map.map
        (fun (tc : Engine.tuple_citation) ->
          let mentions =
            List.exists
              (fun (l : Cite_expr.leaf) -> List.mem l.view dirty_views)
              (Cite_expr.leaves tc.expr)
          in
          if mentions then
            { tc with citations = Policy.eval ~resolve policy tc.expr }
          else tc)
        cache
  in
  Log.debug (fun m ->
      m "apply_delta: %d changes, %d view(s) changed, %d output tuple(s) \
         recomputed"
        (R.Delta.size delta) (List.length view_changes) (List.length affected));
  {
    reg with
    engine = new_engine;
    cache;
    affected_last = List.length affected;
  }
