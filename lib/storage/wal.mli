(** The write-ahead log: framed records over the protocol-v2 wire delta
    format.

    A WAL file is the 8-byte {!magic} followed by {!Frame} records whose
    payloads are text: [C <version> <at> <wire-delta>] for a committed
    delta, [R <query>] for a registered query.  Scanning recovers the
    longest valid prefix — a torn tail, CRC mismatch, undecodable
    payload or implausible length ends the scan at that byte offset
    instead of raising. *)

val magic : string

type record =
  | Commit of { version : int; at : int; delta : Dc_relational.Delta.t }
  | Register of string

val encode_record : record -> string
(** The record's payload text (unframed). *)

val decode_record :
  schemas:Dc_relational.Schema.t list -> string -> (record, string) result
(** Inverse of {!encode_record}.  Deltas are parsed schema-typed (see
    {!Dc_relational.Delta_wire.parse_typed}) so committed values replay
    exactly. *)

(** {2 Scanning} *)

type scan = {
  records : record list;  (** the longest valid prefix, in log order *)
  valid_bytes : int;
      (** offset just past the last valid record (includes the magic) *)
  total_bytes : int;
  corrupt : string option;
      (** why the scan stopped before [total_bytes], when it did *)
}

val scan_string :
  schemas:Dc_relational.Schema.t list -> string -> (scan, string) result
(** Scan whole-file contents.  [Error] only for a missing/foreign magic
    (appends cannot damage the first bytes, so that is a foreign file,
    not a torn tail); everything after the magic degrades to a shorter
    valid prefix. *)

val scan_file :
  schemas:Dc_relational.Schema.t list -> string -> (scan, string) result
(** {!scan_string} on a file, with the path prefixed to any error. *)

(** {2 Appending} *)

type fsync =
  | Always
      (** every append is durable before it returns — no committed delta
          is ever lost.  Concurrent appenders {e group commit}: one
          leader fsyncs (lock released, so others keep appending
          meanwhile) and every append its barrier covered returns
          without a disk touch of its own.  Serial load still pays one
          fsync per append; the [wal_group_commits] counter tracks how
          often a barrier covered more than one append. *)
  | Interval of float
      (** fsync when at least this many seconds passed since the last
          one — bounded loss window, near-[Never] throughput *)
  | Never  (** leave flushing to the OS — crash may lose the tail *)

type writer

val create : path:string -> fsync:fsync -> (writer, string) result
(** Create a fresh WAL (magic only).  Fails if the file exists. *)

val open_existing :
  path:string -> fsync:fsync -> valid_bytes:int -> (writer, string) result
(** Reopen a scanned WAL for append, truncating it to [valid_bytes]
    first — the one write that ever shortens a WAL discards exactly the
    corrupt tail the scan rejected. *)

val append : writer -> record -> (unit, string) result
(** Append one framed record and apply the fsync policy (under
    [Always], through the group commit above — [Ok] means the record is
    on disk, however many appends shared the barrier).  Thread-safe.
    [Error] (with path and reason) on any I/O failure — the caller must
    then {e not} consider the record durable. *)

val sync : writer -> (unit, string) result
(** Force an fsync now (snapshot barrier, graceful drain). *)

val close : writer -> unit
(** Flush and close.  Idempotent; later appends return [Error]. *)
