(** The durable version store: a data directory holding a write-ahead
    log plus binary snapshots, and crash recovery back into a
    {!Dc_relational.Version_store.t}.

    {b Layout.}  [<dir>/wal.log] is an append-only log of framed
    records (see {!Wal}); [<dir>/snapshot-<v>.snap] is a binary
    snapshot of version [v] (see {!Snapshot}).  [snapshot-000000000]
    is written when the directory is initialized, so {!Full} recovery
    always has a floor.

    {b Recovery.}  {!open_} on a populated directory loads the seed
    snapshot (per {!mode}), scans the WAL — keeping the longest valid
    prefix and discarding a torn tail by truncation — replays the
    suffix of committed deltas with their original version numbers and
    timestamps, gathers registered queries, and verifies the recovered
    state against the newest snapshot's stored fixity digest (refusing
    to open on a mismatch).

    {b Durability ordering.}  Callers append to the WAL {e before}
    publishing a commit (see {!Dc_citation.Versioned_engine}); the
    store syncs the WAL before writing any snapshot, so a snapshot
    never describes state the log lacks.

    All I/O errors are [Error] values carrying path and reason — never
    exceptions. *)

type fsync = Wal.fsync = Always | Interval of float | Never

type mode =
  | Full
      (** seed from snapshot 0 and replay the whole WAL: every version
          ever committed is citable again (the default) *)
  | Fast
      (** seed from the latest valid snapshot and replay only the
          suffix: fastest restart, but versions older than that
          snapshot are not re-materialized *)

type t

type recovery = {
  store : Dc_relational.Version_store.t;  (** the recovered store *)
  registrations : string list;
      (** rendered queries to re-arm, in registration order *)
  replayed : int;  (** commit records replayed from the WAL *)
  seeded_from : int;  (** snapshot version recovery started from *)
  discarded_bytes : int;  (** invalid WAL tail bytes truncated away *)
  digest_verified : bool option;
      (** [Some true] when the recovered head state matched the newest
          snapshot's stored digest; [None] when there was nothing to
          compare (no digest function, or the WAL lost that version) *)
}

val open_ :
  ?digest:(Dc_relational.Database.t -> string) ->
  ?fsync:fsync ->
  ?mode:mode ->
  dir:string ->
  db:Dc_relational.Database.t ->
  unit ->
  (t * recovery option, string) result
(** Open (or initialize) a data directory.  A directory without a WAL
    is initialized fresh: [db] becomes version 0, its snapshot is
    written, and the result carries [None].  A populated directory is
    recovered as described above and the result carries [Some].
    [digest] (typically {!Dc_citation.Fixity.digest_db}) is stored in
    snapshots and checked on recovery.  [fsync] defaults to [Always],
    [mode] to [Full]. *)

val append_commit :
  t -> version:int -> at:int -> Dc_relational.Delta.t -> (unit, string) result
(** Log one committed delta.  Call {e before} publishing the new head:
    an [Error] here means the commit is not durable and must not be
    exposed. *)

val append_register : t -> string -> (unit, string) result
(** Log one registered query (its rendered form). *)

val write_snapshot :
  t ->
  store:Dc_relational.Version_store.t ->
  registrations:string list ->
  (int, string) result
(** Snapshot the store's head if it advanced past the last snapshot
    (no-op [Ok last] otherwise).  Syncs the WAL first.  Returns the
    version now covered by the newest snapshot. *)

val last_snapshot_version : t -> int
val sync : t -> (unit, string) result
(** Force the WAL to disk (graceful drain). *)

val dir : t -> string

val close : t -> unit
(** Final WAL sync + close.  The handle must not be used afterwards. *)
