(** Compacted binary snapshots of the full relation set at one version.

    A snapshot is the recovery floor: load it, replay the WAL suffix,
    and the store is back.  The payload is self-describing binary
    (schemas + type-tagged values), CRC-framed like a WAL record, and
    written via temp file + rename so a crash mid-write can never
    produce a validly-named half snapshot. *)

type t = {
  version : int;
  at : int;  (** the version's commit timestamp *)
  digest : string;
      (** the fixity digest of [db] as stored at write time; [""] when
          the writer had no digest function *)
  registrations : string list;  (** rendered registered queries *)
  db : Dc_relational.Database.t;
}

val encode : t -> string
(** The unframed binary payload (exposed for the property tests). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; total — corruption comes back as [Error]. *)

val path : dir:string -> version:int -> string
(** [dir/snapshot-%09d.snap]. *)

val list : dir:string -> ((int * string) list, string) result
(** Snapshot files in [dir], newest version first. *)

val write : dir:string -> t -> (string, string) result
(** Write (temp + rename + fsync), returning the final path.  Errors
    carry the path and reason. *)

val read : string -> (t, string) result
(** Read and verify (magic, CRC, decode).  Errors carry the path and
    reason. *)
