(* The write-ahead log: an append-only file of framed records.

   Layout: an 8-byte magic, then {!Frame} records.  Each record payload
   is text — the protocol-v2 wire delta format carries the data, so a
   WAL record is readable with [strings wal.log] and the codec is the
   one the server already speaks:

   {v
     C <version> <at> <wire-delta>     a committed delta
     R <query>                         a registered query
   v}

   Scanning recovers the longest valid prefix: the first torn frame,
   CRC mismatch, undecodable payload or version gap ends the scan at
   that byte offset, and reopening for append truncates the tail away.
   Appends never rewrite earlier bytes, so an fsynced prefix stays
   valid whatever happens to the tail. *)

module R = Dc_relational

let log_src = Logs.Src.create "datacite.storage" ~doc:"Durable version store"

module Log = (val Logs.src_log log_src)

let magic = "DCWAL01\n"

type record =
  | Commit of { version : int; at : int; delta : R.Delta.t }
  | Register of string

let encode_record = function
  | Commit { version; at; delta } ->
      Printf.sprintf "C %d %d %s" version at (R.Delta_wire.render delta)
  | Register q -> "R " ^ q

let split_first s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let decode_record ~schemas payload =
  let tag, rest = split_first payload in
  match tag with
  | "R" -> if rest = "" then Error "register record: empty query" else Ok (Register rest)
  | "C" -> (
      let v, rest = split_first rest in
      let at, body = split_first rest in
      match (int_of_string_opt v, int_of_string_opt at) with
      | Some version, Some at ->
          Result.map
            (fun delta -> Commit { version; at; delta })
            (Result.map_error
               (fun e -> "commit record: " ^ e)
               (R.Delta_wire.parse_typed ~schemas body))
      | _ -> Error (Printf.sprintf "commit record: bad header %S" payload))
  | t -> Error (Printf.sprintf "unknown record tag %S" t)

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)

type scan = {
  records : record list;  (** the longest valid prefix, in log order *)
  valid_bytes : int;
      (** offset just past the last valid record (includes the magic);
          reopening truncates the file here *)
  total_bytes : int;
  corrupt : string option;
      (** why the scan stopped before [total_bytes], when it did *)
}

let scan_string ~schemas contents =
  let n = String.length contents in
  let m = String.length magic in
  if n < m || String.sub contents 0 m <> magic then
    (* A missing/wrong magic is not a torn tail — appends cannot damage
       the first 8 bytes — so refuse rather than "recover" to empty. *)
    Error
      (Printf.sprintf "bad WAL magic (got %S, want %S)"
         (String.sub contents 0 (min n m))
         magic)
  else
    let rec go acc pos =
      match Frame.read contents pos with
      | Frame.End ->
          { records = List.rev acc; valid_bytes = pos; total_bytes = n;
            corrupt = None }
      | Frame.Corrupt reason ->
          { records = List.rev acc; valid_bytes = pos; total_bytes = n;
            corrupt = Some reason }
      | Frame.Frame (payload, next) -> (
          match decode_record ~schemas payload with
          | Ok r -> go (r :: acc) next
          | Error reason ->
              { records = List.rev acc; valid_bytes = pos; total_bytes = n;
                corrupt = Some reason })
    in
    Ok (go [] m)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

let scan_file ~schemas path =
  match read_file path with
  | Error e -> Error e (* Sys_error / Unix errors already carry the path *)
  | Ok contents ->
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (scan_string ~schemas contents)

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)

type fsync = Always | Interval of float | Never

(* Group commit ([Always] policy): every append gets a generation
   number; one appender at a time becomes the {e leader} and fsyncs
   with the writer lock {e released}, so concurrent committers keep
   appending frames meanwhile.  When the leader returns, everything
   written before its fsync started ([synced_gen]) is durable in one
   barrier; followers parked on [cond] wake, see their generation
   covered, and return without ever touching the disk.  Under serial
   load the leader is alone and the behaviour (and fsync count) is
   exactly the old one-fsync-per-append. *)
type writer = {
  fd : Unix.file_descr;
  path : string;
  fsync : fsync;
  mu : Mutex.t;
  cond : Condition.t;  (* group-commit handoff: synced_gen advanced *)
  mutable write_gen : int;  (* appends written (frame on the fd) *)
  mutable synced_gen : int;  (* appends covered by some fsync *)
  mutable sync_inflight : bool;  (* a leader is fsyncing, lock released *)
  mutable last_sync : float;  (* monotonic; Interval bookkeeping *)
  mutable dirty : bool;
  mutable closed : bool;
}

let wrap_unix path what f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s: %s" path what (Unix.error_message e))

let writer_of_fd ~path ~fsync fd =
  {
    fd;
    path;
    fsync;
    mu = Mutex.create ();
    cond = Condition.create ();
    write_gen = 0;
    synced_gen = 0;
    sync_inflight = false;
    last_sync = Dc_clock.Monotonic.now_s ();
    dirty = false;
    closed = false;
  }

let create ~path ~fsync =
  wrap_unix path "create" (fun () ->
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
      in
      (try
         let n = Unix.write_substring fd magic 0 (String.length magic) in
         assert (n = String.length magic);
         Unix.fsync fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      writer_of_fd ~path ~fsync fd)

(* Reopen after a scan: the file is truncated to the scanned valid
   prefix — the one write that ever shortens a WAL — so the next append
   lands where the last valid record ended. *)
let open_existing ~path ~fsync ~valid_bytes =
  wrap_unix path "open" (fun () ->
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      (try
         (if (Unix.fstat fd).Unix.st_size <> valid_bytes then begin
            Unix.ftruncate fd valid_bytes;
            Unix.fsync fd
          end);
         ignore (Unix.lseek fd 0 Unix.SEEK_END)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      writer_of_fd ~path ~fsync fd)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* Direct fsync with the lock held throughout (Interval policy, explicit
   [sync], [close]): no appender can interleave, so the barrier covers
   everything written so far. *)
let sync_locked w =
  if w.dirty then begin
    Hooks.timed "wal_fsync" (fun () -> Unix.fsync w.fd);
    !Hooks.count "wal_fsyncs" 1;
    w.dirty <- false;
    if w.write_gen > w.synced_gen then w.synced_gen <- w.write_gen
  end;
  w.last_sync <- Dc_clock.Monotonic.now_s ()

(* Called with [w.mu] held; returns (still holding it) once generation
   [my_gen] is covered by a completed fsync.  A failed leader fsync
   wakes the followers to retry as leaders themselves — each append
   either ends durable or returns its own error, never a false Ok. *)
let group_sync_locked w my_gen =
  let rec wait () =
    if w.synced_gen >= my_gen then ()
    else if w.closed then
      (* closed under a waiting follower: durability unknowable *)
      raise (Unix.Unix_error (Unix.EBADF, "fsync", w.path))
    else if w.sync_inflight then begin
      Condition.wait w.cond w.mu;
      wait ()
    end
    else begin
      w.sync_inflight <- true;
      let target = w.write_gen in
      Mutex.unlock w.mu;
      let res =
        try
          Hooks.timed "wal_fsync" (fun () -> Unix.fsync w.fd);
          None
        with Unix.Unix_error (e, fn, arg) -> Some (e, fn, arg)
      in
      Mutex.lock w.mu;
      w.sync_inflight <- false;
      (match res with
      | None ->
          !Hooks.count "wal_fsyncs" 1;
          let covered = target - w.synced_gen in
          if covered >= 2 then !Hooks.count "wal_group_commits" 1;
          if target > w.synced_gen then w.synced_gen <- target;
          w.dirty <- w.write_gen > w.synced_gen;
          w.last_sync <- Dc_clock.Monotonic.now_s ()
      | Some _ -> ());
      Condition.broadcast w.cond;
      match res with
      | None -> () (* target >= my_gen: we are covered *)
      | Some (e, fn, arg) -> raise (Unix.Unix_error (e, fn, arg))
    end
  in
  wait ()

let append w record =
  Mutex.protect w.mu (fun () ->
      if w.closed then Error (w.path ^ ": WAL is closed")
      else
        wrap_unix w.path "append" (fun () ->
            Hooks.timed "wal_append" (fun () ->
                write_all w.fd (Frame.to_string (encode_record record)));
            !Hooks.count "wal_appends" 1;
            w.write_gen <- w.write_gen + 1;
            w.dirty <- true;
            match w.fsync with
            | Always -> group_sync_locked w w.write_gen
            | Never -> ()
            | Interval s ->
                if Dc_clock.Monotonic.now_s () -. w.last_sync >= s then
                  sync_locked w))

let sync w =
  Mutex.protect w.mu (fun () ->
      if w.closed then Ok ()
      else wrap_unix w.path "fsync" (fun () -> sync_locked w))

let close w =
  Mutex.protect w.mu (fun () ->
      if not w.closed then begin
        w.closed <- true;
        (try if w.dirty then Unix.fsync w.fd with Unix.Unix_error _ -> ());
        (try Unix.close w.fd with Unix.Unix_error _ -> ());
        (* group-commit followers parked on the condition must not hang *)
        Condition.broadcast w.cond
      end)
