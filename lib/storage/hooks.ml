(* Instrumentation seams.  dc_storage sits below dc_citation (which owns
   the Metrics registry), so, like [Dc_cq.Eval.on_event], it exposes
   hook refs that metrics.ml points at its recorders when dc_citation is
   linked.  Stand-alone use of the library leaves them as no-ops. *)

let count : (string -> int -> unit) ref = ref (fun _ _ -> ())
let time : (string -> (unit -> unit) -> unit) ref = ref (fun _ f -> f ())

(* [timed name f] runs [f] under the time hook, threading its result
   out (the hook's type is monomorphic in [unit]). *)
let timed name f =
  let r = ref None in
  !time name (fun () -> r := Some (f ()));
  match !r with Some v -> v | None -> assert false
