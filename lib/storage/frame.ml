(* Length + CRC framing shared by the WAL and the snapshot files.

   A frame is [len:u32le][crc:u32le][payload], where [crc] is the
   CRC-32 (IEEE 802.3) of the payload.  The reader never trusts [len]
   beyond the bytes actually present, so a torn tail — the normal state
   of a WAL after a crash mid-append — reads as a clean end of the
   valid prefix, not an exception. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let u32le n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (n land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 3 ((n lsr 24) land 0xff);
  Bytes.unsafe_to_string b

let read_u32le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(* A single frame must stay well under any plausible real record; an
   implausible length in the header is corruption, not a big record. *)
let max_payload = 1 lsl 26 (* 64 MiB *)

let write buf payload =
  Buffer.add_string buf (u32le (String.length payload));
  Buffer.add_string buf (u32le (crc32 payload));
  Buffer.add_string buf payload

let to_string payload =
  let buf = Buffer.create (String.length payload + 8) in
  write buf payload;
  Buffer.contents buf

type read_result =
  | Frame of string * int  (** payload, offset just past the frame *)
  | End
  | Corrupt of string

let read s pos =
  let n = String.length s in
  if pos = n then End
  else if n - pos < 8 then Corrupt "truncated frame header"
  else
    let len = read_u32le s pos in
    let crc = read_u32le s (pos + 4) in
    if len > max_payload then
      Corrupt (Printf.sprintf "implausible frame length %d" len)
    else if n - pos - 8 < len then Corrupt "truncated frame payload"
    else
      let payload = String.sub s (pos + 8) len in
      if crc32 payload <> crc then Corrupt "frame CRC mismatch"
      else Frame (payload, pos + 8 + len)
