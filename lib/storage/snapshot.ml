(* Compacted binary snapshots of the full relation set.

   A snapshot file is the 8-byte magic plus one {!Frame} whose payload
   is a self-describing binary encoding of the store state at one
   version: header (version, timestamp, fixity digest, registered
   queries) then every relation with its schema and tuples.  Values
   carry their own type tags, so decoding needs no external schema and
   float / timestamp columns survive exactly (this is why CSV is off
   this path).  Writes go through a temp file + rename, so a crash
   mid-snapshot leaves either the old file set or the new one — never a
   half-written snapshot with a valid name. *)

module R = Dc_relational

let magic = "DCSNAP1\n"

type t = {
  version : int;
  at : int;
  digest : string;  (* "" when the writer had no digest function *)
  registrations : string list;
  db : R.Database.t;
}

(* ------------------------------------------------------------------ *)
(* Binary primitives.  Unsigned LEB128 varints; signed ints zigzag. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let add_varint buf n =
  if n < 0 then invalid_arg "add_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let add_zigzag buf n = add_varint buf ((n lsl 1) lxor (n asr 62))

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

type reader = { src : string; mutable pos : int }

let read_byte r =
  if r.pos >= String.length r.src then corrupt "unexpected end of snapshot";
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflow";
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zigzag r =
  let n = read_varint r in
  (n lsr 1) lxor (-(n land 1))

let read_string r =
  let n = read_varint r in
  if n > String.length r.src - r.pos then corrupt "string overruns snapshot";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Values, schemas, relations                                          *)

let add_value buf (v : R.Value.t) =
  match v with
  | R.Value.Null -> Buffer.add_char buf '\000'
  | R.Value.Bool b ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (if b then '\001' else '\000')
  | R.Value.Int n ->
      Buffer.add_char buf '\002';
      add_zigzag buf n
  | R.Value.Float f ->
      Buffer.add_char buf '\003';
      Buffer.add_int64_le buf (Int64.bits_of_float f)
  | R.Value.Timestamp n ->
      Buffer.add_char buf '\004';
      add_zigzag buf n
  | R.Value.Str s ->
      Buffer.add_char buf '\005';
      add_string buf s

let read_value r : R.Value.t =
  match read_byte r with
  | 0 -> R.Value.Null
  | 1 -> R.Value.Bool (read_byte r <> 0)
  | 2 -> R.Value.Int (read_zigzag r)
  | 3 ->
      if String.length r.src - r.pos < 8 then corrupt "float overruns snapshot";
      let bits = String.get_int64_le r.src r.pos in
      r.pos <- r.pos + 8;
      R.Value.Float (Int64.float_of_bits bits)
  | 4 -> R.Value.Timestamp (read_zigzag r)
  | 5 -> R.Value.Str (read_string r)
  | t -> corrupt "unknown value tag %d" t

let ty_tag : R.Value.ty -> int = function
  | R.Value.TInt -> 0
  | R.Value.TFloat -> 1
  | R.Value.TStr -> 2
  | R.Value.TBool -> 3
  | R.Value.TTimestamp -> 4
  | R.Value.TAny -> 5

let ty_of_tag = function
  | 0 -> R.Value.TInt
  | 1 -> R.Value.TFloat
  | 2 -> R.Value.TStr
  | 3 -> R.Value.TBool
  | 4 -> R.Value.TTimestamp
  | 5 -> R.Value.TAny
  | t -> corrupt "unknown type tag %d" t

let add_schema buf schema =
  add_string buf (R.Schema.name schema);
  let attrs = R.Schema.attributes schema in
  add_varint buf (List.length attrs);
  List.iter
    (fun (a : R.Schema.attribute) ->
      add_string buf a.name;
      add_varint buf (ty_tag a.ty))
    attrs;
  let key = R.Schema.key schema in
  add_varint buf (List.length key);
  List.iter (add_string buf) key

let read_schema r =
  let name = read_string r in
  let nattrs = read_varint r in
  let attrs =
    List.init nattrs (fun _ ->
        let aname = read_string r in
        R.Schema.attr ~ty:(ty_of_tag (read_varint r)) aname)
  in
  let nkey = read_varint r in
  let key = List.init nkey (fun _ -> read_string r) in
  match R.Schema.make ~key name attrs with
  | s -> s
  | exception Invalid_argument e -> corrupt "bad schema %s: %s" name e

let add_relation buf rel =
  add_schema buf (R.Relation.schema rel);
  add_varint buf (R.Relation.cardinality rel);
  R.Relation.iter
    (fun tuple -> Array.iter (add_value buf) tuple)
    rel

let read_relation r =
  let schema = read_schema r in
  let n = read_varint r in
  let arity = R.Schema.arity schema in
  let tuples =
    List.init n (fun _ ->
        R.Tuple.of_array (Array.init arity (fun _ -> read_value r)))
  in
  match R.Relation.of_list schema tuples with
  | rel -> rel
  | exception Invalid_argument e ->
      corrupt "bad tuple in %s: %s" (R.Schema.name schema) e

(* ------------------------------------------------------------------ *)
(* Whole snapshots                                                     *)

let encode t =
  let buf = Buffer.create 4096 in
  add_varint buf t.version;
  add_zigzag buf t.at;
  add_string buf t.digest;
  add_varint buf (List.length t.registrations);
  List.iter (add_string buf) t.registrations;
  let rels = R.Database.relations t.db in
  add_varint buf (List.length rels);
  List.iter (add_relation buf) rels;
  Buffer.contents buf

let decode payload =
  try
    let r = { src = payload; pos = 0 } in
    let version = read_varint r in
    let at = read_zigzag r in
    let digest = read_string r in
    let nregs = read_varint r in
    let registrations = List.init nregs (fun _ -> read_string r) in
    let nrels = read_varint r in
    let db =
      List.fold_left
        (fun db rel -> R.Database.add_relation db rel)
        R.Database.empty
        (List.init nrels (fun _ -> read_relation r))
    in
    if r.pos <> String.length payload then corrupt "trailing bytes";
    Ok { version; at; digest; registrations; db }
  with Corrupt e -> Error e

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let file_name version = Printf.sprintf "snapshot-%09d.snap" version
let path ~dir ~version = Filename.concat dir (file_name version)

let version_of_file name =
  match Scanf.sscanf_opt name "snapshot-%9d.snap%!" (fun v -> v) with
  | Some v when file_name v = name -> Some v
  | _ -> None

let list ~dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | names ->
      Ok
        (Array.to_list names
        |> List.filter_map (fun n ->
               Option.map (fun v -> (v, Filename.concat dir n)) (version_of_file n))
        |> List.sort (fun (a, _) (b, _) -> compare b a))

let write ~dir t =
  let final = path ~dir ~version:t.version in
  let tmp = final ^ ".tmp" in
  let res =
    Hooks.timed "snapshot_write" @@ fun () ->
    match
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let buf = Buffer.create 4096 in
          Buffer.add_string buf magic;
          Frame.write buf (encode t);
          let s = Buffer.contents buf in
          let n = String.length s in
          let rec go off =
            if off < n then go (off + Unix.write_substring fd s off (n - off))
          in
          go 0;
          Unix.fsync fd);
      Unix.rename tmp final;
      (* Make the rename itself durable. *)
      (try
         let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
         Fun.protect
           ~finally:(fun () ->
             try Unix.close dfd with Unix.Unix_error _ -> ())
           (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
       with Unix.Unix_error _ -> ())
    with
    | () -> Ok final
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.unlink tmp with Unix.Unix_error _ | Sys_error _ -> ());
        Error
          (Printf.sprintf "%s: write snapshot: %s" final (Unix.error_message e))
  in
  (match res with Ok _ -> !Hooks.count "snapshots_written" 1 | Error _ -> ());
  res

let read path =
  Hooks.timed "snapshot_load" @@ fun () ->
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | contents ->
      let m = String.length magic in
      if String.length contents < m || String.sub contents 0 m <> magic then
        Error (Printf.sprintf "%s: bad snapshot magic" path)
      else (
        match Frame.read contents m with
        | Frame.End -> Error (Printf.sprintf "%s: empty snapshot" path)
        | Frame.Corrupt reason -> Error (Printf.sprintf "%s: %s" path reason)
        | Frame.Frame (payload, next) ->
            if next <> String.length contents then
              Error (Printf.sprintf "%s: trailing bytes after snapshot" path)
            else
              Result.map_error
                (fun e -> Printf.sprintf "%s: %s" path e)
                (decode payload))
