(* The durable version store: one directory holding a WAL plus
   snapshots, and the recovery path that turns them back into a
   [Version_store.t].

   Directory layout:
   {v
     <dir>/wal.log                  append-only framed records
     <dir>/snapshot-%09d.snap       binary snapshot of that version
   v}

   Invariants:
   - [snapshot-000000000.snap] always exists (written at init), so Full
     recovery always has a version-0 floor to replay onto.
   - the WAL is synced before a snapshot is written, so a snapshot
     never describes state the log does not (durably) contain.
   - the only destructive write is the reopen-truncate that discards a
     scanned-invalid WAL tail. *)

module R = Dc_relational
module VS = R.Version_store

let log_src =
  Logs.Src.create "datacite.storage.store" ~doc:"Durable store recovery"

module Log = (val Logs.src_log log_src)

type fsync = Wal.fsync = Always | Interval of float | Never

type mode =
  | Full  (** seed from snapshot 0, replay the whole WAL: every version
              ever committed is citable again *)
  | Fast
      (** seed from the latest valid snapshot, replay only the suffix:
          fastest restart; versions older than that snapshot are not
          re-materialized *)

type t = {
  dir : string;
  digest : (R.Database.t -> string) option;
  writer : Wal.writer;
  mu : Mutex.t;
  mutable last_snapshot : int;
}

type recovery = {
  store : VS.t;
  registrations : string list;
  replayed : int;
  seeded_from : int;
  discarded_bytes : int;
  digest_verified : bool option;
}

let wal_path dir = Filename.concat dir "wal.log"
let dir t = t.dir
let last_snapshot_version t = Mutex.protect t.mu (fun () -> t.last_snapshot)

let digest_of t db = match t.digest with None -> "" | Some f -> f db

(* ------------------------------------------------------------------ *)
(* Initialization (empty data dir)                                     *)

let ensure_dir dir =
  match Sys.is_directory dir with
  | true -> Ok ()
  | false ->
      (* The satellite "unreadable data dir" case: the path exists but
         is not a directory we can use. *)
      Error (Printf.sprintf "%s: not a directory" dir)
  | exception Sys_error _ -> (
      match Unix.mkdir dir 0o755 with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "%s: cannot create data dir: %s" dir
               (Unix.error_message e)))

let init_fresh ~fsync ~dir t_digest db =
  let at = 1 in
  (* Match [Version_store.create]'s stamp for version 0. *)
  let snap =
    {
      Snapshot.version = 0;
      at;
      digest = (match t_digest with None -> "" | Some f -> f db);
      registrations = [];
      db;
    }
  in
  Result.bind (Snapshot.write ~dir snap) @@ fun _path ->
  Result.bind (Wal.create ~path:(wal_path dir) ~fsync) @@ fun writer ->
  Ok
    {
      dir;
      digest = t_digest;
      writer;
      mu = Mutex.create ();
      last_snapshot = 0;
    }

(* ------------------------------------------------------------------ *)
(* Recovery (existing data dir)                                        *)

(* Valid snapshots, newest first, skipping (with a warning) any that
   fail CRC or decode — "load the latest {e valid} snapshot". *)
let load_snapshots ~dir =
  Result.bind
    (Result.map_error
       (fun e -> Printf.sprintf "%s: cannot list snapshots: %s" dir e)
       (Snapshot.list ~dir))
  @@ fun entries ->
  let valid =
    List.filter_map
      (fun (_v, path) ->
        match Snapshot.read path with
        | Ok s -> Some s
        | Error e ->
            Log.warn (fun m -> m "skipping corrupt snapshot: %s" e);
            None)
      entries
  in
  match valid with
  | [] -> Error (Printf.sprintf "%s: no valid snapshot found" dir)
  | _ -> Ok valid

let replay ~seed records =
  let store = ref (VS.restore ~version:seed.Snapshot.version ~at:seed.Snapshot.at seed.Snapshot.db) in
  let regs = ref seed.Snapshot.registrations in
  let replayed = ref 0 in
  let stop = ref None in
  List.iter
    (fun record ->
      if !stop = None then
        match record with
        | Wal.Register q ->
            if not (List.mem q !regs) then regs := !regs @ [ q ]
        | Wal.Commit { version; at; delta } ->
            let head = VS.head !store in
            if version <= head then () (* predates the seed snapshot *)
            else if version <> head + 1 then
              stop :=
                Some
                  (Printf.sprintf
                     "WAL version gap: have head %d, next record is %d" head
                     version)
            else (
              match VS.apply_head !store delta with
              | exception Not_found ->
                  stop :=
                    Some
                      (Printf.sprintf
                         "WAL replay: version %d touches an unknown relation"
                         version)
              | exception Invalid_argument e ->
                  stop :=
                    Some (Printf.sprintf "WAL replay: version %d: %s" version e)
              | db ->
                  let store', v = VS.commit_at !store ~at db in
                  assert (v = version);
                  store := store';
                  incr replayed))
    records;
  Option.iter (fun reason -> Log.warn (fun m -> m "%s (stopping replay)" reason)) !stop;
  (!store, !regs, !replayed)

let recover ~fsync ~mode ~dir t_digest =
  Result.bind (load_snapshots ~dir) @@ fun snaps_desc ->
  let latest = List.hd snaps_desc in
  let seed =
    match mode with
    | Fast -> latest
    | Full -> List.hd (List.rev snaps_desc) (* lowest valid version *)
  in
  let schemas =
    List.filter_map
      (fun name -> R.Database.schema seed.Snapshot.db name)
      (R.Database.relation_names seed.Snapshot.db)
  in
  Result.bind (Wal.scan_file ~schemas (wal_path dir)) @@ fun scan ->
  let discarded = scan.Wal.total_bytes - scan.Wal.valid_bytes in
  if discarded > 0 then
    Log.warn (fun m ->
        m "%s: discarding %d invalid byte(s) at tail%s" (wal_path dir)
          discarded
          (match scan.Wal.corrupt with
          | None -> ""
          | Some r -> " (" ^ r ^ ")"));
  let store, registrations, replayed =
    Hooks.timed "recovery_replay" (fun () ->
        replay ~seed scan.Wal.records)
  in
  !Hooks.count "recovery_replayed_deltas" replayed;
  (* Verify the recovered state against the stored fixity digest: the
     newest snapshot records what its version hashed to when written;
     if the recovered store disagrees, the files diverged (a WAL and a
     snapshot from different histories) and serving them would break
     every VERIFY promise — refuse to start. *)
  let digest_verified =
    match t_digest with
    | None -> None
    | Some f when latest.Snapshot.digest = "" -> ignore f; None
    | Some f -> (
        match VS.checkout store latest.Snapshot.version with
        | None -> None (* WAL lost the tail; nothing to compare *)
        | Some db -> Some (String.equal (f db) latest.Snapshot.digest))
  in
  match digest_verified with
  | Some false ->
      Error
        (Printf.sprintf
           "%s: recovered version %d does not match its stored fixity digest \
            (snapshot and WAL disagree)"
           dir latest.Snapshot.version)
  | _ ->
      Result.bind
        (Wal.open_existing ~path:(wal_path dir) ~fsync
           ~valid_bytes:scan.Wal.valid_bytes)
      @@ fun writer ->
      Log.info (fun m ->
          m "recovered %s: head %d (seed snapshot %d, %d delta(s) replayed, \
             %d registration(s))"
            dir (VS.head store) seed.Snapshot.version replayed
            (List.length registrations));
      Ok
        ( {
            dir;
            digest = t_digest;
            writer;
            mu = Mutex.create ();
            last_snapshot = latest.Snapshot.version;
          },
          {
            store;
            registrations;
            replayed;
            seeded_from = seed.Snapshot.version;
            discarded_bytes = discarded;
            digest_verified;
          } )

let open_ ?digest ?(fsync = Always) ?(mode = Full) ~dir ~db () =
  Result.bind (ensure_dir dir) @@ fun () ->
  if Sys.file_exists (wal_path dir) then
    Result.map (fun (t, r) -> (t, Some r)) (recover ~fsync ~mode ~dir digest)
  else Result.map (fun t -> (t, None)) (init_fresh ~fsync ~dir digest db)

(* ------------------------------------------------------------------ *)
(* Logging and snapshotting a live store                               *)

let append_commit t ~version ~at delta =
  Wal.append t.writer (Wal.Commit { version; at; delta })

let append_register t query = Wal.append t.writer (Wal.Register query)
let sync t = Wal.sync t.writer

let write_snapshot t ~store ~registrations =
  Mutex.protect t.mu @@ fun () ->
  let version = VS.head store in
  if version <= t.last_snapshot then Ok t.last_snapshot
  else
    (* WAL first: a snapshot must never describe state the (durable)
       log does not contain, or Full recovery could come up behind the
       latest snapshot. *)
    Result.bind (Wal.sync t.writer) @@ fun () ->
    let db = VS.head_db store in
    let at = Option.value ~default:0 (VS.timestamp store version) in
    Result.bind
      (Snapshot.write ~dir:t.dir
         {
           Snapshot.version;
           at;
           digest = digest_of t db;
           registrations;
           db;
         })
    @@ fun _path ->
    t.last_snapshot <- version;
    Ok version

let close t =
  (match Wal.sync t.writer with
  | Ok () -> ()
  | Error e -> Log.warn (fun m -> m "close: %s" e));
  Wal.close t.writer
