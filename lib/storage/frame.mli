(** Length + CRC record framing shared by the WAL and snapshot files:
    [len:u32le][crc32:u32le][payload]. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, the zlib polynomial) of the whole string. *)

val write : Buffer.t -> string -> unit
(** Append one framed payload to the buffer. *)

val to_string : string -> string
(** The framed bytes of one payload. *)

type read_result =
  | Frame of string * int  (** payload, offset just past the frame *)
  | End  (** clean end of input *)
  | Corrupt of string
      (** truncated header/payload, implausible length, or CRC
          mismatch — the reason scanning must stop {e at this offset} *)

val read : string -> int -> read_result
(** [read s pos] reads the frame starting at [pos].  Total: corruption
    and truncation come back as {!Corrupt}, never an exception. *)
